"""The chaos matrix: replay bundled workloads under every fault profile.

``python -m repro chaos`` drives this harness: for each (application,
profile, seed) cell it records the app's canonical scripted session on a
quiet browser, then replays it on a fresh browser with the fault
injector installed, and scores the outcome — complete, failed (some
commands lost), or halted (session aborted). The aggregated
:class:`SurvivalReport` is the headline artifact: survival rate per
profile, per-layer fault counts, retries, recoveries, and aborts.

Everything is virtual-time and seed-driven, so a cell is exactly
reproducible from ``(app, profile, seed)`` — two runs of the same
matrix produce identical reports.
"""

from repro import chaos
from repro.session.engine import SessionEngine
from repro.session.policies import RetryPolicy, TimingPolicy


def default_workloads():
    """The bundled (name, app_class, session, start_url) workloads."""
    from repro.cli import APPS

    return [(name,) + APPS[name] for name in sorted(APPS)]


def record_workload(app_class, session, start_url, label=""):
    """Record one scripted session on a quiet (chaos-free) browser."""
    from repro.apps.framework import make_browser
    from repro.core.recorder import WarrRecorder

    browser, _ = make_browser([app_class], seed=0)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url, label=label)
    session(browser)
    recorder.detach()
    return recorder.trace


class SessionOutcome:
    """One matrix cell: an app's trace replayed under (profile, seed)."""

    COMPLETE = "complete"
    FAILED = "failed"
    HALTED = "halted"

    def __init__(self, app, profile_name, seed, report, injector_summary):
        self.app = app
        self.profile = profile_name
        self.seed = seed
        if report.halted:
            self.status = self.HALTED
        elif report.failed_count:
            self.status = self.FAILED
        else:
            self.status = self.COMPLETE
        self.commands = len(report.trace)
        self.replayed = report.replayed_count
        self.failed = report.failed_count
        self.retries = report.retry_count
        self.recoveries = report.recoveries
        self.halt_reason = report.halt_reason
        #: {"total_faults": n, "faults": {layer: {kind: n}}, ...}
        self.injector = injector_summary

    @property
    def survived(self):
        return self.status == self.COMPLETE

    @property
    def total_faults(self):
        return self.injector.get("total_faults", 0)

    def to_dict(self):
        return {
            "app": self.app,
            "profile": self.profile,
            "seed": self.seed,
            "status": self.status,
            "commands": self.commands,
            "replayed": self.replayed,
            "failed": self.failed,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "halt_reason": self.halt_reason,
            "faults": self.injector.get("faults", {}),
            "total_faults": self.total_faults,
        }

    def __repr__(self):
        return "SessionOutcome(%s/%s seed=%d: %s)" % (
            self.app, self.profile, self.seed, self.status)


class SurvivalReport:
    """The chaos matrix rolled up: survival and recovery per profile."""

    def __init__(self, retry_enabled):
        self.retry_enabled = retry_enabled
        self.outcomes = []

    def add(self, outcome):
        self.outcomes.append(outcome)

    def by_profile(self):
        """{profile: [outcomes]} preserving insertion order."""
        grouped = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.profile, []).append(outcome)
        return grouped

    def profile_stats(self, profile):
        """Aggregate numbers for one profile's row of the matrix."""
        cells = [o for o in self.outcomes if o.profile == profile]
        total = len(cells)
        survived = sum(1 for o in cells if o.survived)
        return {
            "sessions": total,
            "survived": survived,
            "survival_rate": survived / total if total else None,
            "halted": sum(1 for o in cells if o.status == o.HALTED),
            "failed": sum(1 for o in cells if o.status == o.FAILED),
            "faults": sum(o.total_faults for o in cells),
            "retries": sum(o.retries for o in cells),
            "recoveries": sum(o.recoveries for o in cells),
        }

    @property
    def session_count(self):
        return len(self.outcomes)

    @property
    def survived_count(self):
        return sum(1 for o in self.outcomes if o.survived)

    def to_dict(self):
        """JSON-able report (the CI artifact)."""
        return {
            "retry_enabled": self.retry_enabled,
            "sessions": self.session_count,
            "survived": self.survived_count,
            "profiles": {profile: self.profile_stats(profile)
                         for profile in self.by_profile()},
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def summary_lines(self):
        """Human-readable matrix rows for the CLI."""
        lines = ["chaos matrix: %d session(s), retries %s"
                 % (self.session_count,
                    "on" if self.retry_enabled else "off")]
        for profile in self.by_profile():
            stats = self.profile_stats(profile)
            lines.append(
                "%-16s survived %d/%d (%.0f%%)  faults=%d retries=%d "
                "recoveries=%d halted=%d"
                % (profile, stats["survived"], stats["sessions"],
                   100.0 * (stats["survival_rate"] or 0.0), stats["faults"],
                   stats["retries"], stats["recoveries"], stats["halted"]))
        return lines

    def __repr__(self):
        return "SurvivalReport(%d/%d survived)" % (
            self.survived_count, self.session_count)


def replay_under_chaos(trace, app_class, profile, seed, retry=None,
                       timing=None):
    """Replay one recorded trace with the fault injector installed.

    Returns ``(report, injector)``. The injector is installed only
    around the replay — recording and scoring stay quiet — and its
    stream is bound to the replay browser's virtual clock so fault
    records carry virtual timestamps.
    """
    from repro.apps.framework import make_browser

    browser, _ = make_browser([app_class], seed=0, developer_mode=True)
    engine = SessionEngine(
        browser,
        timing=timing if timing is not None else TimingPolicy.recorded(),
        retry=retry)
    with chaos.active(profile, seed=seed, clock=browser.clock) as injector:
        report = engine.run(trace)
    return report, injector


def run_chaos_matrix(profiles, seeds=3, workloads=None, retry=None,
                     timing=None, progress=None):
    """Replay every workload under every (profile, seed); returns a
    :class:`SurvivalReport`.

    ``profiles`` is a list of :class:`~repro.chaos.profile.FaultProfile`
    objects or bundled profile names; ``seeds`` is a count (seeds 0..N-1)
    or an explicit list of seeds. ``retry`` defaults to
    :meth:`RetryPolicy.default` — pass :meth:`RetryPolicy.none` to
    measure how the un-hardened replayer dies. ``progress`` is an
    optional callable receiving one line per completed cell.
    """
    profiles = [chaos.get_profile(p) if isinstance(p, str) else p
                for p in profiles]
    seed_list = list(seeds) if not isinstance(seeds, int) else list(range(seeds))
    if retry is None:
        retry = RetryPolicy.default()
    if workloads is None:
        workloads = default_workloads()
    report = SurvivalReport(retry_enabled=retry.enabled)
    for name, app_class, session, start_url in workloads:
        trace = record_workload(app_class, session, start_url,
                                label="%s chaos workload" % name)
        for profile in profiles:
            for seed in seed_list:
                replay_report, injector = replay_under_chaos(
                    trace, app_class, profile, seed,
                    retry=retry, timing=timing)
                outcome = SessionOutcome(name, profile.name, seed,
                                         replay_report, injector.summary())
                report.add(outcome)
                if progress is not None:
                    progress("[%s/%s seed=%d] %s: %d fault(s), %d "
                             "retr%s, %d recover%s"
                             % (name, profile.name, seed, outcome.status,
                                outcome.total_faults, outcome.retries,
                                "y" if outcome.retries == 1 else "ies",
                                outcome.recoveries,
                                "y" if outcome.recoveries == 1 else "ies"))
    return report
