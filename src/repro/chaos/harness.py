"""The chaos matrix: replay bundled workloads under every fault profile.

``python -m repro chaos`` drives this harness: for each (application,
profile, seed) cell it records the app's canonical scripted session on a
quiet browser, then replays it on a fresh browser with the fault
injector installed, and scores the outcome — complete, failed (some
commands lost), or halted (session aborted). The aggregated
:class:`SurvivalReport` is the headline artifact: survival rate per
profile, per-layer fault counts, retries, recoveries, and aborts.

Everything is virtual-time and seed-driven, so a cell is exactly
reproducible from ``(app, profile, seed)`` — two runs of the same
matrix produce identical reports.
"""

from repro import chaos
from repro.session.engine import SessionEngine
from repro.session.policies import RetryPolicy, TimingPolicy


def default_workloads():
    """The bundled (name, app_class, session, start_url) workloads."""
    from repro.cli import APPS

    return [(name,) + APPS[name] for name in sorted(APPS)]


def record_workload(app_class, session, start_url, label=""):
    """Record one scripted session on a quiet (chaos-free) browser."""
    from repro.apps.framework import make_browser
    from repro.core.recorder import WarrRecorder

    browser, _ = make_browser([app_class], seed=0)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url, label=label)
    session(browser)
    recorder.detach()
    return recorder.trace


class SessionOutcome:
    """One matrix cell: an app's trace replayed under (profile, seed)."""

    COMPLETE = "complete"
    FAILED = "failed"
    HALTED = "halted"

    def __init__(self, app, profile_name, seed, report, injector_summary):
        self.app = app
        self.profile = profile_name
        self.seed = seed
        if report.halted:
            self.status = self.HALTED
        elif report.failed_count:
            self.status = self.FAILED
        else:
            self.status = self.COMPLETE
        self.commands = len(report.trace)
        self.replayed = report.replayed_count
        self.failed = report.failed_count
        self.retries = report.retry_count
        self.recoveries = report.recoveries
        self.halt_reason = report.halt_reason
        #: {"total_faults": n, "faults": {layer: {kind: n}}, ...}
        self.injector = injector_summary

    @property
    def survived(self):
        return self.status == self.COMPLETE

    @property
    def total_faults(self):
        return self.injector.get("total_faults", 0)

    def to_dict(self):
        return {
            "app": self.app,
            "profile": self.profile,
            "seed": self.seed,
            "status": self.status,
            "commands": self.commands,
            "replayed": self.replayed,
            "failed": self.failed,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "halt_reason": self.halt_reason,
            "faults": self.injector.get("faults", {}),
            "total_faults": self.total_faults,
        }

    def __repr__(self):
        return "SessionOutcome(%s/%s seed=%d: %s)" % (
            self.app, self.profile, self.seed, self.status)


class SurvivalReport:
    """The chaos matrix rolled up: survival and recovery per profile."""

    def __init__(self, retry_enabled):
        self.retry_enabled = retry_enabled
        self.outcomes = []

    def add(self, outcome):
        self.outcomes.append(outcome)

    def by_profile(self):
        """{profile: [outcomes]} preserving insertion order."""
        grouped = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.profile, []).append(outcome)
        return grouped

    def profile_stats(self, profile):
        """Aggregate numbers for one profile's row of the matrix."""
        cells = [o for o in self.outcomes if o.profile == profile]
        total = len(cells)
        survived = sum(1 for o in cells if o.survived)
        return {
            "sessions": total,
            "survived": survived,
            "survival_rate": survived / total if total else None,
            "halted": sum(1 for o in cells if o.status == o.HALTED),
            "failed": sum(1 for o in cells if o.status == o.FAILED),
            "faults": sum(o.total_faults for o in cells),
            "retries": sum(o.retries for o in cells),
            "recoveries": sum(o.recoveries for o in cells),
        }

    @property
    def session_count(self):
        return len(self.outcomes)

    @property
    def survived_count(self):
        return sum(1 for o in self.outcomes if o.survived)

    def to_dict(self):
        """JSON-able report (the CI artifact)."""
        return {
            "retry_enabled": self.retry_enabled,
            "sessions": self.session_count,
            "survived": self.survived_count,
            "profiles": {profile: self.profile_stats(profile)
                         for profile in self.by_profile()},
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def summary_lines(self):
        """Human-readable matrix rows for the CLI."""
        lines = ["chaos matrix: %d session(s), retries %s"
                 % (self.session_count,
                    "on" if self.retry_enabled else "off")]
        for profile in self.by_profile():
            stats = self.profile_stats(profile)
            lines.append(
                "%-16s survived %d/%d (%.0f%%)  faults=%d retries=%d "
                "recoveries=%d halted=%d"
                % (profile, stats["survived"], stats["sessions"],
                   100.0 * (stats["survival_rate"] or 0.0), stats["faults"],
                   stats["retries"], stats["recoveries"], stats["halted"]))
        return lines

    def __repr__(self):
        return "SurvivalReport(%d/%d survived)" % (
            self.survived_count, self.session_count)


def replay_under_chaos(trace, app_class, profile, seed, retry=None,
                       timing=None):
    """Replay one recorded trace with the fault injector installed.

    Returns ``(report, injector)``. The injector is installed only
    around the replay — recording and scoring stay quiet — and its
    stream is bound to the replay browser's virtual clock so fault
    records carry virtual timestamps.
    """
    from repro.apps.framework import make_browser

    browser, _ = make_browser([app_class], seed=0, developer_mode=True)
    engine = SessionEngine(
        browser,
        timing=timing if timing is not None else TimingPolicy.recorded(),
        retry=retry)
    with chaos.active(profile, seed=seed, clock=browser.clock) as injector:
        report = engine.run(trace)
    return report, injector


def run_chaos_matrix(profiles, seeds=3, workloads=None, retry=None,
                     timing=None, progress=None):
    """Replay every workload under every (profile, seed); returns a
    :class:`SurvivalReport`.

    ``profiles`` is a list of :class:`~repro.chaos.profile.FaultProfile`
    objects or bundled profile names; ``seeds`` is a count (seeds 0..N-1)
    or an explicit list of seeds. ``retry`` defaults to
    :meth:`RetryPolicy.default` — pass :meth:`RetryPolicy.none` to
    measure how the un-hardened replayer dies. ``progress`` is an
    optional callable receiving one line per completed cell.
    """
    profiles = [chaos.get_profile(p) if isinstance(p, str) else p
                for p in profiles]
    seed_list = list(seeds) if not isinstance(seeds, int) else list(range(seeds))
    if retry is None:
        retry = RetryPolicy.default()
    if workloads is None:
        workloads = default_workloads()
    report = SurvivalReport(retry_enabled=retry.enabled)
    for name, app_class, session, start_url in workloads:
        trace = record_workload(app_class, session, start_url,
                                label="%s chaos workload" % name)
        for profile in profiles:
            for seed in seed_list:
                replay_report, injector = replay_under_chaos(
                    trace, app_class, profile, seed,
                    retry=retry, timing=timing)
                outcome = SessionOutcome(name, profile.name, seed,
                                         replay_report, injector.summary())
                report.add(outcome)
                if progress is not None:
                    progress("[%s/%s seed=%d] %s: %d fault(s), %d "
                             "retr%s, %d recover%s"
                             % (name, profile.name, seed, outcome.status,
                                outcome.total_faults, outcome.retries,
                                "y" if outcome.retries == 1 else "ies",
                                outcome.recoveries,
                                "y" if outcome.recoveries == 1 else "ies"))
    return report


# -- resilience soak ----------------------------------------------------------
#
# The chaos matrix above breaks components *inside* one browser; the
# soak breaks the batch farm itself. Each scenario launches a real
# ``python -m repro batch --journal`` subprocess, injures it the way an
# operator's machine would (SIGTERM, SIGKILL'd parent, chaos-killed
# workers), resumes from the journal, and then audits the journal for
# the one invariant durability promises: every trace finished exactly
# once — nothing lost, nothing double-counted.

SOAK_SCENARIOS = ("drain", "kill-worker", "crash-parent")
SOAK_MODES = ("serial", "sharded", "pooled")

_MODE_ARGS = {
    "serial": (),
    "sharded": ("--shards", "3"),
    "pooled": ("--workers", "2"),
}


class SoakOutcome:
    """One soak cell: a (scenario, mode) pair and its audit verdict."""

    def __init__(self, scenario, mode, passed, detail, verdict=None,
                 interrupted_exit=None, resume_exit=None):
        self.scenario = scenario
        self.mode = mode
        self.passed = bool(passed)
        self.detail = detail
        #: The final :func:`~repro.session.journal.verify_exactly_once`
        #: audit (None when the scenario died before producing one).
        self.verdict = verdict
        self.interrupted_exit = interrupted_exit
        self.resume_exit = resume_exit

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "passed": self.passed,
            "detail": self.detail,
            "verdict": self.verdict,
            "interrupted_exit": self.interrupted_exit,
            "resume_exit": self.resume_exit,
        }

    def __repr__(self):
        return "SoakOutcome(%s/%s: %s)" % (
            self.scenario, self.mode, "pass" if self.passed else "FAIL")


class SoakReport:
    """Every soak cell rolled up; ``passed`` is the CI gate."""

    def __init__(self):
        self.outcomes = []

    def add(self, outcome):
        self.outcomes.append(outcome)

    @property
    def passed(self):
        return bool(self.outcomes) and all(o.passed for o in self.outcomes)

    def to_dict(self):
        return {
            "passed": self.passed,
            "cells": len(self.outcomes),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary_lines(self):
        lines = ["soak: %d cell(s), %s"
                 % (len(self.outcomes),
                    "all passed" if self.passed else "FAILURES")]
        for o in self.outcomes:
            lines.append("%-14s %-8s %s  %s"
                         % (o.scenario, o.mode,
                            "pass" if o.passed else "FAIL", o.detail))
        return lines

    def __repr__(self):
        return "SoakReport(%d cells, %s)" % (
            len(self.outcomes), "passed" if self.passed else "failed")


def _soak_env(throttle):
    """Subprocess environment: importable ``repro`` + soak throttle."""
    import os
    import repro
    from repro.session.supervisor import THROTTLE_ENV

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    if throttle:
        env[THROTTLE_ENV] = "%g" % throttle
    else:
        env.pop(THROTTLE_ENV, None)
    return env


def _batch_command(trace_paths, app, mode, journal, resume=False,
                   chaos_profile=None, chaos_seed=0):
    import sys

    cmd = [sys.executable, "-m", "repro", "batch"]
    cmd += list(trace_paths)
    cmd += ["--app", app, "--no-wait", "--journal", journal]
    cmd += list(_MODE_ARGS[mode])
    if resume:
        cmd.append("--resume")
    if chaos_profile:
        cmd += ["--chaos", chaos_profile, "--chaos-seed", str(chaos_seed)]
    return cmd


def _journal_finishes(path):
    """Finished-trace count right now (0 while the file is unborn)."""
    from repro.session import journal as run_journal

    try:
        return len(run_journal.read_journal(path).finish_by_index())
    except (OSError, run_journal.JournalError):
        return 0


def _wait_for_finishes(path, minimum, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if _journal_finishes(path) >= minimum:
            return True
        time.sleep(0.02)
    return False


def _run_to_completion(proc, verbose, progress):
    stdout, stderr = proc.communicate()
    if verbose and progress is not None:
        for line in (stdout or "").splitlines():
            progress("  | " + line)
        for line in (stderr or "").splitlines():
            progress("  ! " + line)
    return proc.returncode


def _kill_tree(proc):
    """SIGKILL the subprocess and its whole session (pool workers)."""
    import os
    import signal as signal_module

    try:
        os.killpg(os.getpgid(proc.pid), signal_module.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.kill()
        except OSError:
            pass


def run_soak(app="sites", mode=None, traces=6, seed=0, throttle=0.15,
             scenarios=None, journal_dir=None, verbose=False,
             progress=None):
    """Run the resilience soak matrix; returns a :class:`SoakReport`.

    Scenarios (each per batch backend unless noted):

    - ``drain`` — SIGTERM the running batch after its first finish; it
      must exit 75 with a resumable journal; the resume run completes.
    - ``kill-worker`` (pooled only) — run under the ``farm`` chaos
      profile so worker processes die mid-chunk; containment, requeue,
      and quarantine must keep the journal exactly-once.
    - ``crash-parent`` — SIGKILL the whole batch process tree mid-run
      (no drain, no cleanup); the resume run picks up from the torn
      journal and completes.

    Every cell's final audit is
    :func:`repro.session.journal.verify_exactly_once`: all traces
    finished, no duplicates — the zero-lost / zero-double-counted
    invariant.
    """
    import os
    import shutil
    import signal as signal_module
    import subprocess
    import tempfile

    from repro.cli import APPS
    from repro.session import journal as run_journal

    modes = list(mode) if mode else list(SOAK_MODES)
    chosen = list(scenarios) if scenarios else list(SOAK_SCENARIOS)
    workdir = journal_dir or tempfile.mkdtemp(prefix="repro-soak-")
    os.makedirs(workdir, exist_ok=True)
    app_class, session, start_url = APPS[app]
    trace = record_workload(app_class, session, start_url,
                            label="%s soak workload" % app)
    trace_paths = []
    for index in range(traces):
        path = os.path.join(workdir, "soak-%d.warr" % index)
        trace.save(path)
        trace_paths.append(path)

    def launch(journal, mode_name, resume=False, chaos_profile=None,
               slow=True):
        cmd = _batch_command(trace_paths, app, mode_name, journal,
                             resume=resume, chaos_profile=chaos_profile,
                             chaos_seed=seed)
        return subprocess.Popen(
            cmd, env=_soak_env(throttle if slow else 0.0),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            start_new_session=True)

    def audit(journal):
        return run_journal.verify_exactly_once(
            journal, expected_labels=trace_paths)

    def all_replayed(journal):
        """True when every journaled trace finished status=replayed.

        Replay-quality signal independent of the batch exit code: a
        workload with pre-existing page errors still exits nonzero,
        but durability only promises the traces *ran* exactly once.
        """
        finishes = run_journal.read_journal(journal).finish_by_index()
        return all(record.status == run_journal.REPLAYED
                   for record in finishes.values())

    report = SoakReport()
    for mode_name in modes:
        for scenario in chosen:
            if scenario == "kill-worker" and mode_name != "pooled":
                continue
            journal = os.path.join(
                workdir, "%s-%s.wj1" % (scenario, mode_name))
            if progress is not None:
                progress("soak %s/%s ..." % (scenario, mode_name))
            if scenario == "drain":
                proc = launch(journal, mode_name)
                _wait_for_finishes(journal, 1)
                proc.send_signal(signal_module.SIGTERM)
                first_exit = _run_to_completion(proc, verbose, progress)
                partial = _journal_finishes(journal)
                if first_exit not in (75, 0):
                    _kill_tree(proc)
                    report.add(SoakOutcome(
                        scenario, mode_name, False,
                        "drain exited %s (wanted 75)" % first_exit,
                        interrupted_exit=first_exit))
                    continue
                resume_exit = _run_to_completion(
                    launch(journal, mode_name, resume=True, slow=False),
                    verbose, progress)
                verdict = audit(journal)
                passed = (resume_exit in (0, 1)
                          and verdict["exactly_once"]
                          and all_replayed(journal))
                detail = ("drained at %d/%d, resumed %d, exactly-once=%s"
                          % (partial, traces, traces - partial,
                             verdict["exactly_once"]))
            elif scenario == "crash-parent":
                proc = launch(journal, mode_name)
                _wait_for_finishes(journal, 1)
                _kill_tree(proc)
                first_exit = _run_to_completion(proc, verbose, progress)
                partial = _journal_finishes(journal)
                resume_exit = _run_to_completion(
                    launch(journal, mode_name, resume=True, slow=False),
                    verbose, progress)
                verdict = audit(journal)
                passed = (resume_exit in (0, 1)
                          and verdict["exactly_once"]
                          and all_replayed(journal))
                detail = ("killed at %d/%d, resumed %d, exactly-once=%s"
                          % (partial, traces, traces - partial,
                             verdict["exactly_once"]))
            else:  # kill-worker
                proc = launch(journal, mode_name, chaos_profile="farm",
                              slow=False)
                first_exit = _run_to_completion(proc, verbose, progress)
                resume_exit = None
                verdict = audit(journal)
                quarantined = sum(
                    1 for record in run_journal.read_journal(journal)
                    .finish_by_index().values()
                    if record.status == run_journal.QUARANTINED)
                passed = (first_exit in (0, 1)
                          and verdict["exactly_once"])
                detail = ("farm chaos: exit %s, %d quarantined, "
                          "exactly-once=%s"
                          % (first_exit, quarantined,
                             verdict["exactly_once"]))
            report.add(SoakOutcome(scenario, mode_name, passed, detail,
                                   verdict=verdict,
                                   interrupted_exit=first_exit,
                                   resume_exit=resume_exit))
            if progress is not None:
                progress("soak %s/%s: %s (%s)"
                         % (scenario, mode_name,
                            "pass" if passed else "FAIL", detail))
    if journal_dir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return report
