"""The seed-driven fault injector behind every chaos injection point.

A :class:`ChaosInjector` binds a :class:`~repro.chaos.profile.FaultProfile`
to a seed. Every instrumented boundary (IPC pump, renderer input, network
fetch, page-script entry, layout reflow) asks it one question — *does a
fault fire here, and how hard?* — via :meth:`fault`. Decisions draw from
per-layer random streams derived with a stable (process-independent) hash,
so:

- the complete fault schedule is a pure function of ``(profile, seed)``;
- layers cannot perturb each other's streams (turning layout jitter off
  does not move the renderer-crash schedule);
- a zero rate short-circuits **before** drawing, so a fully quiet profile
  consumes no randomness and a disabled-chaos run is bit-equivalent to a
  no-chaos run.

Every fired fault is appended to an in-order :class:`FaultRecord` log
(the "fault schedule" the determinism tests compare byte-for-byte),
counted in :mod:`repro.perf` as ``chaos.<layer>`` counters, and — when a
tracer is installed — emitted as an instant on the chaos telemetry track.
"""

import json
import zlib
from contextlib import contextmanager

from repro import perf, telemetry
from repro.telemetry.tracks import CHAOS_TRACK
from repro.util.rng import SeededRandom


def _stable_child_seed(seed, label):
    """A process-independent child seed (``hash()`` of str is salted)."""
    return (int(seed) * 1000003 + zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF


class FaultRecord:
    """One fired fault: where, what, when, and how hard."""

    __slots__ = ("seq", "layer", "kind", "amount", "vt_ms", "detail")

    def __init__(self, seq, layer, kind, amount, vt_ms, detail):
        self.seq = seq
        self.layer = layer
        self.kind = kind
        self.amount = amount
        self.vt_ms = vt_ms
        self.detail = detail

    def to_dict(self):
        return {
            "seq": self.seq,
            "layer": self.layer,
            "kind": self.kind,
            "amount": self.amount,
            "vt_ms": self.vt_ms,
            "detail": self.detail,
        }

    def __repr__(self):
        return "FaultRecord(#%d %s.%s amount=%r)" % (
            self.seq, self.layer, self.kind, self.amount)


class ChaosInjector:
    """Deterministic fault decisions for one ``(profile, seed)`` pair."""

    def __init__(self, profile, seed=0, clock=None):
        self.profile = profile
        self.seed = seed
        #: Optional VirtualClock; stamps records with virtual time.
        self.clock = clock
        self._streams = {}
        self._suppressed = 0
        #: In-order log of fired faults — the canonical fault schedule.
        self.records = []
        #: decisions[layer] = number of times the layer consulted us.
        self.decisions = {}
        #: fault_counts[(layer, kind)] = number of fired faults.
        self.fault_counts = {}
        # Profiles are immutable by convention, so each layer's
        # liveness is decided once here. Hot paths (the IPC pump runs
        # per message, layout per reflow) test these plain booleans and
        # skip the injector entirely for zeroed layers: a disabled
        # profile costs one attribute check per site — no rate lookup,
        # no randomness, no counter bump.
        live = frozenset(profile.active_layers())
        self.live_layers = live
        self.ipc_active = "ipc" in live
        self.renderer_active = "renderer" in live
        self.net_active = "net" in live
        self.script_active = "script" in live
        self.layout_active = "layout" in live
        self.worker_active = "worker" in live

    def layer_active(self, layer):
        """True when ``layer`` has at least one non-zero rate."""
        return layer in self.live_layers

    # -- randomness ---------------------------------------------------------

    def stream(self, layer):
        """The layer's private random stream (created on first use)."""
        rng = self._streams.get(layer)
        if rng is None:
            rng = SeededRandom(_stable_child_seed(self.seed, "chaos." + layer))
            self._streams[layer] = rng
        return rng

    # -- suppression --------------------------------------------------------

    @contextmanager
    def suppressed(self):
        """No faults fire inside the block (used by recovery replays).

        Suppressed consultations neither draw randomness nor count as
        decisions, so a recovery pass leaves the fault schedule exactly
        where the crash left it.
        """
        self._suppressed += 1
        try:
            yield
        finally:
            self._suppressed -= 1

    @property
    def is_suppressed(self):
        return self._suppressed > 0

    # -- the decision -------------------------------------------------------

    def fault(self, layer, kind, rate_field, amount_field=None, detail=""):
        """Decide whether a fault fires at this injection point.

        Returns ``None`` when no fault fires. When one does, returns the
        drawn magnitude — a float sampled uniformly from the profile's
        ``amount_field`` range, or ``0.0`` for faults without a magnitude
        (drops, crashes, script errors).
        """
        rate = self.profile.rate(rate_field)
        if rate <= 0.0 or self._suppressed:
            return None
        self.decisions[layer] = self.decisions.get(layer, 0) + 1
        rng = self.stream(layer)
        fired = rng.random() < rate
        perf.record("chaos." + layer, fired)
        if not fired:
            return None
        amount = 0.0
        if amount_field is not None:
            low, high = getattr(self.profile, amount_field)
            amount = rng.uniform(low, high)
        self._log(layer, kind, amount, detail)
        return amount

    def _log(self, layer, kind, amount, detail):
        key = (layer, kind)
        self.fault_counts[key] = self.fault_counts.get(key, 0) + 1
        vt_ms = self.clock.now() if self.clock is not None else None
        record = FaultRecord(len(self.records), layer, kind, amount,
                             vt_ms, detail)
        self.records.append(record)
        tracer = telemetry.current()
        if tracer is not None and tracer.wants("chaos"):
            tracer.instant("chaos.%s.%s" % (layer, kind), track=CHAOS_TRACK,
                           cat="chaos", args={"amount": amount,
                                              "detail": detail,
                                              "seq": record.seq})

    # -- reporting ----------------------------------------------------------

    @property
    def total_faults(self):
        return len(self.records)

    def counts_by_layer(self):
        """{layer: {kind: fired}} over every fault so far."""
        out = {}
        for (layer, kind), count in sorted(self.fault_counts.items()):
            out.setdefault(layer, {})[kind] = count
        return out

    def schedule(self):
        """The fault schedule as a list of plain dicts (JSON-able)."""
        return [record.to_dict() for record in self.records]

    def schedule_bytes(self):
        """Canonical bytes of the schedule — byte-identical iff equal."""
        return json.dumps(self.schedule(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def summary(self):
        """JSON-able roll-up for survival reports."""
        return {
            "profile": self.profile.name,
            "seed": self.seed,
            "total_faults": self.total_faults,
            "decisions": dict(sorted(self.decisions.items())),
            "faults": self.counts_by_layer(),
        }

    def __repr__(self):
        return "ChaosInjector(%r, seed=%r, faults=%d)" % (
            self.profile.name, self.seed, self.total_faults)
