"""Composable fault profiles: what to break, how often, how hard.

A :class:`FaultProfile` is pure configuration — per-layer fault rates
and magnitudes. It carries no randomness of its own; pairing a profile
with a seed in a :class:`~repro.chaos.injector.ChaosInjector` fully
determines the fault schedule, so any chaotic run is reproducible from
``(profile, seed)``.

Profiles compose by derivation: :meth:`replace` overrides fields,
:meth:`only`/:meth:`without` filter by layer, :meth:`scaled` multiplies
every rate. The bundled presets (``PROFILES``) are the rows of the
chaos matrix the ``python -m repro chaos`` harness replays.
"""

#: The substrate layers faults can be injected into. "worker" is a
#: farm-level layer: it kills whole worker *processes* in a batch pool
#: rather than components inside one browser.
LAYERS = ("ipc", "renderer", "net", "script", "layout", "worker")

#: Profile fields, with the layer each belongs to and its default.
_FIELDS = (
    # IPC: browser -> renderer message channel.
    ("ipc_drop_rate", "ipc", 0.0),
    ("ipc_delay_rate", "ipc", 0.0),
    ("ipc_delay_ms", "ipc", (5.0, 60.0)),
    ("ipc_reorder_rate", "ipc", 0.0),
    # Renderer process.
    ("renderer_crash_rate", "renderer", 0.0),
    ("renderer_hang_rate", "renderer", 0.0),
    ("renderer_hang_ms", "renderer", (50.0, 400.0)),
    # Network.
    ("fetch_fail_rate", "net", 0.0),
    ("fetch_latency_rate", "net", 0.0),
    ("fetch_latency_ms", "net", (20.0, 250.0)),
    ("fetch_slow_body_rate", "net", 0.0),
    ("fetch_slow_body_ms_per_kb", "net", (10.0, 80.0)),
    # Page scripts.
    ("script_error_rate", "script", 0.0),
    # Layout.
    ("layout_jitter_rate", "layout", 0.0),
    ("layout_jitter_px", "layout", (1.0, 6.0)),
    # Batch farm: per-trace probability that the worker process hosting
    # the trace dies (SIGKILL-style, exit 137) before replaying it.
    ("worker_kill_rate", "worker", 0.0),
)

_FIELD_LAYER = {name: layer for name, layer, _ in _FIELDS}
_FIELD_DEFAULT = {name: default for name, _, default in _FIELDS}


class FaultProfile:
    """Per-layer fault rates and magnitudes (immutable by convention)."""

    __slots__ = ("name",) + tuple(name for name, _, _ in _FIELDS)

    def __init__(self, name="custom", **fields):
        unknown = set(fields) - set(_FIELD_DEFAULT)
        if unknown:
            raise ValueError("unknown fault profile field(s): %s"
                             % ", ".join(sorted(unknown)))
        self.name = name
        for field, default in _FIELD_DEFAULT.items():
            value = fields.get(field, default)
            if field.endswith("_rate"):
                value = float(value)
                if not 0.0 <= value <= 1.0:
                    raise ValueError("%s must be in [0, 1], got %r"
                                     % (field, value))
            else:
                low, high = value
                if low < 0 or high < low:
                    raise ValueError("%s must be a (low, high) range with "
                                     "0 <= low <= high" % field)
                value = (float(low), float(high))
            setattr(self, field, value)

    # -- composition --------------------------------------------------------

    def fields(self):
        """{field: value} for every configurable field."""
        return {field: getattr(self, field) for field in _FIELD_DEFAULT}

    def replace(self, name=None, **overrides):
        """A derived profile with ``overrides`` applied."""
        fields = self.fields()
        fields.update(overrides)
        return FaultProfile(name if name is not None else self.name, **fields)

    def only(self, *layers):
        """A derived profile with every other layer's rates zeroed."""
        keep = set(layers)
        unknown = keep - set(LAYERS)
        if unknown:
            raise ValueError("unknown layer(s): %s" % ", ".join(sorted(unknown)))
        overrides = {field: 0.0 for field in _FIELD_DEFAULT
                     if field.endswith("_rate") and _FIELD_LAYER[field] not in keep}
        return self.replace(**overrides)

    def without(self, *layers):
        """A derived profile with the given layers' rates zeroed."""
        return self.only(*[layer for layer in LAYERS if layer not in layers])

    def scaled(self, factor):
        """A derived profile with every rate multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        overrides = {field: min(1.0, getattr(self, field) * factor)
                     for field in _FIELD_DEFAULT if field.endswith("_rate")}
        return self.replace(**overrides)

    def rate(self, field):
        """Rate lookup by field name (0.0 for unknown fields)."""
        return getattr(self, field, 0.0)

    @property
    def quiet(self):
        """True when every rate is zero (no fault can ever fire)."""
        return all(getattr(self, field) == 0.0
                   for field in _FIELD_DEFAULT if field.endswith("_rate"))

    def active_layers(self):
        """Layers with at least one non-zero rate, in LAYERS order."""
        live = {_FIELD_LAYER[field] for field in _FIELD_DEFAULT
                if field.endswith("_rate") and getattr(self, field) > 0.0}
        return [layer for layer in LAYERS if layer in live]

    def to_dict(self):
        """JSON-able description (name + every field)."""
        data = {"name": self.name}
        for field, value in sorted(self.fields().items()):
            data[field] = list(value) if isinstance(value, tuple) else value
        return data

    # -- presets ------------------------------------------------------------

    @classmethod
    def disabled(cls):
        """All rates zero: installing it must change nothing."""
        return cls("disabled")

    @classmethod
    def default(cls):
        """Mild background chaos across every layer."""
        return cls(
            "default",
            ipc_drop_rate=0.02, ipc_delay_rate=0.05, ipc_reorder_rate=0.03,
            renderer_crash_rate=0.02, renderer_hang_rate=0.03,
            fetch_fail_rate=0.05, fetch_latency_rate=0.10,
            fetch_slow_body_rate=0.05,
            script_error_rate=0.03,
            layout_jitter_rate=0.05,
        )

    @classmethod
    def flaky_net(cls):
        """An unreliable backend: failures, latency spikes, slow bodies."""
        return cls(
            "flaky-net",
            fetch_fail_rate=0.30, fetch_latency_rate=0.30,
            fetch_latency_ms=(50.0, 500.0), fetch_slow_body_rate=0.20,
        )

    @classmethod
    def renderer_crash(cls):
        """Sad tabs: renderer death plus occasional hangs."""
        return cls(
            "renderer-crash",
            renderer_crash_rate=0.10, renderer_hang_rate=0.10,
        )

    @classmethod
    def ipc_storm(cls):
        """A congested channel: drops, delays, reordering."""
        return cls(
            "ipc-storm",
            ipc_drop_rate=0.05, ipc_delay_rate=0.25,
            ipc_delay_ms=(10.0, 120.0), ipc_reorder_rate=0.15,
        )

    @classmethod
    def script_chaos(cls):
        """Page scripts throwing at load time and inside timers."""
        return cls("script-chaos", script_error_rate=0.25)

    @classmethod
    def layout_jitter(cls):
        """Late/shifted layout: every reflow may translate the page."""
        return cls("layout-jitter", layout_jitter_rate=0.40,
                   layout_jitter_px=(1.0, 8.0))

    @classmethod
    def farm(cls):
        """Worker processes dying under the batch: the soak profile.

        Only the farm layer is live — traces themselves replay cleanly,
        so every failure the pool sees is a worker death it must
        contain (requeue, respawn, quarantine, journal)."""
        return cls("farm", worker_kill_rate=0.15)

    @classmethod
    def everything(cls):
        """The default profile turned up: every layer, higher rates."""
        return cls.default().scaled(2.5).replace(name="everything")

    def __repr__(self):
        live = ",".join(self.active_layers()) or "quiet"
        return "FaultProfile(%r, %s)" % (self.name, live)


def get_profile(name):
    """Look up a bundled profile by name; raises ValueError if unknown.

    Accepts both spellings of multi-word names (``flaky-net`` and
    ``flaky_net``).
    """
    try:
        factory = PROFILES[str(name).replace("_", "-")]
    except KeyError:
        raise ValueError("unknown fault profile %r; choose from %s"
                         % (name, ", ".join(sorted(PROFILES))))
    return factory()


#: name -> zero-argument factory for every bundled profile.
PROFILES = {
    "disabled": FaultProfile.disabled,
    "default": FaultProfile.default,
    "flaky-net": FaultProfile.flaky_net,
    "renderer-crash": FaultProfile.renderer_crash,
    "ipc-storm": FaultProfile.ipc_storm,
    "script-chaos": FaultProfile.script_chaos,
    "layout-jitter": FaultProfile.layout_jitter,
    "farm": FaultProfile.farm,
    "everything": FaultProfile.everything,
}
