"""UsaProxy/Mugshot-style baseline: JavaScript injection via a proxy.

Paper, Section II: "One can use proxies to inject JavaScript code into
HTML pages to track user interaction, as in Mugshot and UsaProxy. These
approaches have two limitations. First, they can instrument only HTML
pages, because they cannot identify HTML or JavaScript code in non-HTML
server responses. Second, using proxies requires breaking the end-to-end
security enforced by HTTPS."

This simulation reproduces the mechanism and both limitations:

- the proxy sits between browser and server, rewriting *HTML* responses
  to append a tracking ``<script>``;
- non-HTML responses (JSON fragments that client code turns into DOM)
  pass through untouched — interaction with DOM built from them is
  instrumented only by luck of the load-time listener pass;
- HTTPS responses are opaque: nothing can be injected, so secure pages
  are recorded not at all — unless the deployment *breaks end-to-end
  encryption* (``break_https=True``), which works but is exactly the
  privacy hazard the paper warns about.
"""

from repro.net.http import HttpResponse
from repro.net.server import WebServer
from repro.xpath.generator import xpath_for_element

TRACKER_SCRIPT_NAME = "usaproxy.tracker"
_TRACKER_TAG = '<script data-script="%s"></script>' % TRACKER_SCRIPT_NAME


class UsaProxyRecorder(WebServer):
    """A logging proxy in front of one application server."""

    def __init__(self, upstream, break_https=False):
        self.upstream = upstream
        self.break_https = break_https
        #: (action, locator) pairs reported by the injected tracker.
        self.commands = []
        #: Responses that passed through uninstrumented, with the reason.
        self.uninstrumented = []
        #: True once the proxy decrypted HTTPS traffic (privacy hazard).
        self.broke_encryption = False

    # -- the proxy ---------------------------------------------------------

    def handle(self, request):
        response = self.upstream.handle(request)
        if request.is_secure:
            if not self.break_https:
                self.uninstrumented.append((request.url, "https"))
                return response
            # MITM: the proxy terminates TLS and reads the plaintext.
            self.broke_encryption = True
        if response.content_type != "text/html":
            self.uninstrumented.append((request.url, "non-html"))
            return response
        return HttpResponse(
            body=self._inject(response.body),
            status=response.status,
            content_type=response.content_type,
            headers=response.headers,
        )

    @staticmethod
    def _inject(html):
        lowered = html.lower()
        index = lowered.rfind("</body>")
        if index == -1:
            return html + _TRACKER_TAG
        return html[:index] + _TRACKER_TAG + html[index:]

    # -- the injected tracker ------------------------------------------------

    def tracker_script(self):
        """The client-side code the proxy injects.

        Registered under :data:`TRACKER_SCRIPT_NAME`; a document-level
        bubbling click listener logging ``event.target`` — the classic
        UsaProxy design. It sees only what bubbles to the body of an
        *instrumented* page: keystrokes and drags are not tracked, and
        pages the proxy could not rewrite record nothing at all.
        """
        proxy = self

        def tracker(window):
            document = window.document
            body = document.body
            if body is None:
                return

            def handler(event):
                if not event.is_trusted:
                    return
                target = event.target
                if target is None or not hasattr(target, "tag"):
                    return
                locator = str(xpath_for_element(target, document))
                proxy.commands.append(("click", locator))

            body.add_event_listener("click", handler)

        return tracker

    def install(self, network, registry, host, latency_ms=None):
        """Wire the proxy in front of ``host`` on a network."""
        network.register(host, self, latency_ms=latency_ms)
        registry.register(TRACKER_SCRIPT_NAME, self.tracker_script())
        return self

    def __repr__(self):
        return "UsaProxyRecorder(%d commands, %d uninstrumented)" % (
            len(self.commands), len(self.uninstrumented),
        )
