"""Recording-fidelity measurement (Table II methodology).

"Recording fidelity quantifies recorded interactions, and high-fidelity
recording requires that all interactions be recorded" (paper, Section I).
We measure it against ground truth: the
:class:`~repro.workloads.sessions.SimulatedUser` logs every action it
performs, and a recorder's trace is scored by how many of those actions
it captured. A recorder is **Complete** (C) when it captured everything
and **Partial** (P) otherwise — the paper's Table II labels.

Scoring rules:

- every user click / double click / drag / keystroke is one action;
- a WaRR command covers exactly one action of its kind;
- a Selenium IDE ``type`` command carries a whole final value and is
  credited with covering that many keystrokes *into value-bearing form
  controls* (that is how Selenese records typing); keystrokes into
  contenteditable containers have no Selenese representation.
"""

COMPLETE = "C"
PARTIAL = "P"

#: Action kinds a SimulatedUser logs.
ACTION_CLICK = "click"
ACTION_DOUBLECLICK = "doubleclick"
ACTION_KEY = "key"
ACTION_DRAG = "drag"


class FidelityResult:
    """Per-recorder coverage over one scenario."""

    def __init__(self, recorder_name, covered, total, per_kind):
        self.recorder_name = recorder_name
        self.covered = covered
        self.total = total
        #: kind -> (covered, total)
        self.per_kind = per_kind

    @property
    def coverage(self):
        if self.total == 0:
            return 1.0
        return self.covered / self.total

    @property
    def label(self):
        return COMPLETE if self.covered == self.total else PARTIAL

    def __repr__(self):
        return "FidelityResult(%s: %d/%d -> %s)" % (
            self.recorder_name, self.covered, self.total, self.label,
        )


def _count_actions(actions):
    counts = {}
    for action in actions:
        counts[action.kind] = counts.get(action.kind, 0) + 1
    return counts


def _score_warr(actions, trace):
    from repro.core.commands import (
        ClickCommand, DoubleClickCommand, DragCommand, TypeCommand,
    )

    expected = _count_actions(actions)
    recorded = {
        ACTION_CLICK: 0, ACTION_DOUBLECLICK: 0,
        ACTION_KEY: 0, ACTION_DRAG: 0,
    }
    for command in trace:
        if isinstance(command, DoubleClickCommand):
            recorded[ACTION_DOUBLECLICK] += 1
        elif isinstance(command, ClickCommand):
            recorded[ACTION_CLICK] += 1
        elif isinstance(command, TypeCommand):
            recorded[ACTION_KEY] += 1
        elif isinstance(command, DragCommand):
            recorded[ACTION_DRAG] += 1
    return _tally("WaRR Recorder", expected, recorded)


def _score_selenium(actions, commands):
    expected = _count_actions(actions)
    recorded = {
        ACTION_CLICK: 0, ACTION_DOUBLECLICK: 0,
        ACTION_KEY: 0, ACTION_DRAG: 0,
    }
    value_keystrokes_expected = sum(
        1 for a in actions if a.kind == ACTION_KEY and a.into_value_control
    )
    focus_clicks_expected = sum(
        1 for a in actions
        if a.kind == ACTION_CLICK and getattr(a, "is_focus_click", False)
    )
    typed_via_values = 0
    type_command_count = 0
    for command in commands:
        if command.action == "click":
            recorded[ACTION_CLICK] += 1
        elif command.action == "type":
            type_command_count += 1
            typed_via_values += len(command.value)
    recorded[ACTION_KEY] = min(typed_via_values, value_keystrokes_expected)
    # A Selenese `type` subsumes the click that focused the field.
    recorded[ACTION_CLICK] += min(type_command_count, focus_clicks_expected)
    return _tally("Selenium IDE", expected, recorded)


def _tally(name, expected, recorded):
    per_kind = {}
    covered = 0
    total = 0
    for kind, expected_count in expected.items():
        captured = min(recorded.get(kind, 0), expected_count)
        per_kind[kind] = (captured, expected_count)
        covered += captured
        total += expected_count
    return FidelityResult(name, covered, total, per_kind)


def evaluate_recording_fidelity(actions, warr_trace, selenium_commands):
    """Score both recorders against the user's ground-truth action log.

    Returns (warr_result, selenium_result).
    """
    return _score_warr(actions, warr_trace), _score_selenium(actions, selenium_commands)


# -- replay fidelity (session-engine consumer) ------------------------------

#: WaRR command action -> SimulatedUser action kind.
_COMMAND_ACTION_KINDS = {
    "click": ACTION_CLICK,
    "doubleclick": ACTION_DOUBLECLICK,
    "type": ACTION_KEY,
    "drag": ACTION_DRAG,
}


class ReplayFidelityObserver:
    """Scores replay coverage straight off the session event stream.

    Subscribes to ``command-finished`` events and tallies, per action
    kind, how many of the trace's interactions actually replayed —
    the replay-side complement of the Table II recording score.
    Implemented as a :class:`~repro.session.events.SessionObserver`
    (imported lazily to keep this module importable standalone).
    """

    def __init__(self):
        self.expected = {}
        self.replayed = {}

    # SessionObserver duck-typing: the stream only calls on_event.
    def on_event(self, event):
        if event.kind != "command-finished":
            return
        kind = _COMMAND_ACTION_KINDS.get(event.command.action)
        if kind is None:
            return
        self.expected[kind] = self.expected.get(kind, 0) + 1
        if event.result is not None and event.result.succeeded:
            self.replayed[kind] = self.replayed.get(kind, 0) + 1

    def result(self, name="WaRR Replayer"):
        return _tally(name, self.expected, self.replayed)


def evaluate_replay_fidelity(trace, browser, timing=None):
    """Replay ``trace`` through the session engine and score coverage.

    Returns (replay_report, FidelityResult): Complete when every
    recorded interaction replayed, Partial otherwise.
    """
    from repro.session.engine import SessionEngine

    scorer = ReplayFidelityObserver()
    engine = SessionEngine(browser, timing=timing)
    report = engine.run(trace, observers=[scorer])
    return report, scorer.result()
