"""Fiddler simulation: an HTTP(S) logging proxy.

The paper's Section II argues traffic-level record and replay cannot
debug client-side code: "one cannot distinguish between requests made in
response to user interaction versus requests made by a web page while
loading", and HTTPS hides payloads from the proxy entirely. This class
taps the simulated network's wire log and exposes exactly those
limitations for the comparison tests.
"""


class FiddlerProxy:
    """Passive observer of the network's exchange log."""

    def __init__(self, network):
        self.network = network
        self._start_index = len(network.exchange_log)

    def begin(self):
        """Start a fresh capture window."""
        self._start_index = len(self.network.exchange_log)
        return self

    def captured(self):
        """Exchanges observed since :meth:`begin`."""
        return self.network.exchange_log[self._start_index:]

    def visible_bodies(self):
        """Response bodies as the proxy sees them (HTTPS is opaque)."""
        return [exchange.visible_body for exchange in self.captured()]

    def request_urls(self):
        return [exchange.request.url for exchange in self.captured()]

    def user_action_count(self):
        """How many captured requests were caused by user actions.

        A traffic log carries no such attribution — page loads, iframe
        fetches, and AJAX all look alike — so the honest answer is that
        the proxy cannot tell. Returning ``None`` (not 0) encodes
        "unknowable from this vantage point".
        """
        return None

    def __repr__(self):
        return "FiddlerProxy(%d exchanges captured)" % len(self.captured())
