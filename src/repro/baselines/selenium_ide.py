"""Selenium IDE simulation.

Selenium IDE records through listeners its content script attaches to
the page's DOM after load. That design has structural blind spots the
paper exploits in its fidelity comparison (Table II):

- it instruments only classic form controls and links, so keystrokes
  into *contenteditable* containers (GMail's compose body, Google Sites'
  page editor, Google Docs' cells) are never seen;
- text input on form controls is captured as a single ``type`` command
  with the final value (on blur), not as individual keystrokes;
- it has no listeners for drags or double clicks;
- elements created dynamically *after* the instrumentation pass are
  invisible to it ("misses user actions when recording complex web
  pages", the Selenium FAQ the paper cites);
- it must be explicitly installed/armed by the user — it is not
  always-on.

The simulation reproduces the mechanism (DOM-level listeners attached
once per page load) rather than hard-coding the outcomes, so the
fidelity gap in Table II emerges from the design difference.
"""

from repro.xpath.generator import xpath_for_element

#: Tags Selenium IDE's recorder attaches click listeners to.
CLICKABLE_TAGS = frozenset(["a", "button", "select", "option"])

#: input types treated as clickable rather than typable.
CLICKABLE_INPUT_TYPES = frozenset(["submit", "button", "checkbox", "radio", "image"])

#: Tags whose value changes are captured (as one command, on blur).
TYPABLE_TAGS = frozenset(["input", "textarea"])


class SeleniumCommand:
    """One Selenese-style command: (action, locator, value)."""

    def __init__(self, action, locator, value=""):
        self.action = action
        self.locator = locator
        self.value = value

    def to_line(self):
        if self.value:
            return "%s | %s | %s" % (self.action, self.locator, self.value)
        return "%s | %s" % (self.action, self.locator)

    def __eq__(self, other):
        return (
            isinstance(other, SeleniumCommand)
            and (self.action, self.locator, self.value)
            == (other.action, other.locator, other.value)
        )

    def __repr__(self):
        return "SeleniumCommand(%r)" % self.to_line()


class SeleniumIDERecorder:
    """DOM-listener-based recorder with Selenium IDE's coverage."""

    def __init__(self):
        self.commands = []
        self.recording = False
        self._browser = None
        self._instrumented = set()

    # -- lifecycle ----------------------------------------------------------

    def attach(self, browser):
        """Install the plug-in: instrument every page as it loads."""
        self._browser = browser
        browser.frame_load_listeners.append(self._on_frame_loaded)
        self.recording = True
        # Instrument pages that were already open at install time.
        for tab in browser.tabs:
            if tab.renderer is not None:
                for engine in tab.renderer.engine.all_engines():
                    self._on_frame_loaded(engine)
        return self

    def detach(self):
        if self._browser is not None and self._on_frame_loaded in self._browser.frame_load_listeners:
            self._browser.frame_load_listeners.remove(self._on_frame_loaded)
        self.recording = False

    def begin(self, start_url=""):
        self.commands = []
        if start_url:
            self.commands.append(SeleniumCommand("open", start_url))
        return self

    # -- instrumentation (one pass per page load) ----------------------------

    def _on_frame_loaded(self, engine):
        document = engine.document
        for element in document.all_elements():
            self._instrument_element(engine, element)

    def _instrument_element(self, engine, element):
        key = id(element)
        if key in self._instrumented:
            return
        self._instrumented.add(key)
        tag = element.tag
        if tag in CLICKABLE_TAGS:
            element.add_event_listener("click", self._make_click_handler(engine, element))
            return
        if tag == "input":
            input_type = (element.get_attribute("type") or "text").lower()
            if input_type in CLICKABLE_INPUT_TYPES:
                element.add_event_listener(
                    "click", self._make_click_handler(engine, element))
            else:
                element.add_event_listener(
                    "blur", self._make_type_handler(engine, element))
            return
        if tag == "textarea":
            element.add_event_listener(
                "blur", self._make_type_handler(engine, element))
        # Everything else — contenteditable divs, drags, double clicks,
        # elements created later by scripts — gets no listener.

    def _make_click_handler(self, engine, element):
        def handler(event):
            if not self.recording or not event.is_trusted:
                return
            locator = str(xpath_for_element(element, engine.document))
            self.commands.append(SeleniumCommand("click", locator))
        return handler

    def _make_type_handler(self, engine, element):
        def handler(event):
            if not self.recording:
                return
            if not element.value:
                return
            locator = str(xpath_for_element(element, engine.document))
            self.commands.append(SeleniumCommand("type", locator, element.value))
        return handler

    # -- reporting ---------------------------------------------------------------

    def recorded_actions(self):
        """Commands excluding the initial ``open``."""
        return [c for c in self.commands if c.action != "open"]

    def __repr__(self):
        return "SeleniumIDERecorder(%d commands)" % len(self.commands)
