"""Baseline recorders the paper compares WaRR against.

- :mod:`repro.baselines.selenium_ide` — a plug-in recorder attached at
  the DOM level, with Selenium IDE's characteristic blind spots
  (keystrokes in contenteditable containers, drags, double clicks,
  dynamically created widgets). Reproduces Table II's "Partial" column.
- :mod:`repro.baselines.fiddler` — an HTTP(S) proxy logger. Shows why
  traffic-level recording cannot attribute requests to user actions and
  goes blind under HTTPS (paper, Section II).
"""

from repro.baselines.selenium_ide import SeleniumIDERecorder, SeleniumCommand
from repro.baselines.fiddler import FiddlerProxy
from repro.baselines.usaproxy import UsaProxyRecorder
from repro.baselines.fidelity import (
    FidelityResult,
    evaluate_recording_fidelity,
    COMPLETE,
    PARTIAL,
)

__all__ = [
    "SeleniumIDERecorder",
    "SeleniumCommand",
    "FiddlerProxy",
    "UsaProxyRecorder",
    "FidelityResult",
    "evaluate_recording_fidelity",
    "COMPLETE",
    "PARTIAL",
]
