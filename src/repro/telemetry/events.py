"""Trace events and the bounded ring buffer that holds them.

The event model is the Chrome trace-event format (the interchange
format of catapult's trace_viewer and Perfetto): every event carries a
``name``, a phase ``ph``, a microsecond timestamp ``ts``, and the
``pid``/``tid`` of the track it renders on. The phases this tracer
emits:

====  =======================================================
``X``  complete event (a span with an explicit ``dur``)
``B``  duration-begin (paired with the next ``E`` on its tid)
``E``  duration-end
``b``  async-begin (paired by ``cat``+``id``; may overlap spans)
``e``  async-end
``i``  instant event
``C``  counter event (``args`` holds the series values)
``M``  metadata (process/thread names and sort indexes)
====  =======================================================

Async events model durations that cross threads or overlap freely —
IPC queue residency begins on the browser side and ends when the
renderer picks the message up, so it cannot be a synchronous span on
either thread's stack.

Events are recorded into a :class:`RingBuffer` so an always-on tracer
is bounded: when the buffer fills, the oldest events are dropped and
the drop count is reported in the exported file's ``otherData``.
"""

from collections import deque

#: Phase constants (Chrome trace-event ``ph`` values).
PHASE_COMPLETE = "X"
PHASE_BEGIN = "B"
PHASE_END = "E"
PHASE_ASYNC_BEGIN = "b"
PHASE_ASYNC_END = "e"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"
PHASE_METADATA = "M"

KNOWN_PHASES = frozenset(
    [PHASE_COMPLETE, PHASE_BEGIN, PHASE_END, PHASE_ASYNC_BEGIN,
     PHASE_ASYNC_END, PHASE_INSTANT, PHASE_COUNTER, PHASE_METADATA]
)

#: Default ring-buffer capacity (events).
DEFAULT_BUFFER_SIZE = 65536


class TraceEvent:
    """One Chrome trace event."""

    __slots__ = ("name", "ph", "ts", "pid", "tid", "dur", "cat", "args",
                 "id")

    def __init__(self, name, ph, ts, pid, tid, dur=None, cat=None, args=None,
                 id=None):
        self.name = name
        self.ph = ph
        self.ts = ts
        self.pid = pid
        self.tid = tid
        self.dur = dur
        self.cat = cat
        self.args = args
        #: Async pairing id (``b``/``e`` events match on cat + id).
        self.id = id

    def to_dict(self):
        """The JSON-serializable Chrome trace-event dict."""
        data = {
            "name": self.name,
            "ph": self.ph,
            "ts": round(self.ts, 3),
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            data["dur"] = round(self.dur, 3)
        if self.cat is not None:
            data["cat"] = self.cat
        if self.args is not None:
            data["args"] = self.args
        if self.id is not None:
            data["id"] = self.id
        if self.ph == PHASE_INSTANT:
            # Thread-scoped instants render as ticks on their tid track.
            data["s"] = "t"
        return data

    def __repr__(self):
        return "TraceEvent(%s %r ts=%.1f pid=%d tid=%d)" % (
            self.ph, self.name, self.ts, self.pid, self.tid,
        )


class RingBuffer:
    """Bounded FIFO of trace events; drops the oldest when full.

    ``total`` counts every event ever appended, so consumers can detect
    drops (``total - len(buffer)``) and take incremental slices with
    :meth:`since` (the batch runner exports one slice per trace).
    """

    def __init__(self, capacity=DEFAULT_BUFFER_SIZE):
        if capacity < 1:
            raise ValueError("ring buffer needs capacity >= 1")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self.total = 0

    def append(self, event):
        self._events.append(event)
        self.total += 1

    @property
    def dropped(self):
        """How many events were evicted to keep the buffer bounded."""
        return self.total - len(self._events)

    def since(self, mark):
        """Events appended after ``mark`` (a prior :attr:`total` value).

        Events already evicted are silently absent from the slice.
        """
        skip = max(0, mark - self.dropped)
        if skip == 0:
            return list(self._events)
        return [event for index, event in enumerate(self._events)
                if index >= skip]

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __repr__(self):
        return "RingBuffer(%d/%d, %d dropped)" % (
            len(self._events), self.capacity, self.dropped,
        )
