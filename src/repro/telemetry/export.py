"""Chrome trace-event JSON export and trace summarization.

The exported object is the JSON-object trace format::

    {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}

which catapult's trace_viewer (``chrome://tracing``) and Perfetto load
directly. Track-naming ``M`` metadata events from the tracer's
:class:`~repro.telemetry.tracks.TrackRegistry` are prepended so every
slice — including the per-trace slices the batch runner writes — is
self-describing.
"""

import json

from repro.telemetry.events import (
    PHASE_BEGIN,
    PHASE_COMPLETE,
    PHASE_COUNTER,
    PHASE_END,
    PHASE_INSTANT,
    PHASE_METADATA,
)


def _other_data(dropped, total):
    """The ``otherData`` block: producer plus ring-buffer counters.

    ``events_total`` counts every event the producing tracer ever
    recorded (mirroring the net layer's ``ExchangeLog`` ring), so a
    truncated trace is detectable from the file alone:
    ``dropped_events`` present (and nonzero) means the oldest
    ``dropped_events`` of ``events_total`` were overwritten.
    """
    data = {"producer": "repro.telemetry"}
    if total is not None:
        data["events_total"] = total
    if dropped:
        data["dropped_events"] = dropped
    return data


def to_trace_dict(events, metadata=(), dropped=0, total=None):
    """Assemble the exportable trace object from event sequences."""
    trace_events = [event.to_dict() for event in metadata]
    trace_events.extend(event.to_dict() for event in events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": _other_data(dropped, total),
    }


def to_trace_dict_raw(event_dicts, metadata=(), dropped=0, total=None):
    """Assemble the trace object from *already-exported* event dicts.

    The worker-pool merge path operates on dicts (workers ship decoded
    ``TraceEvent.to_dict()`` output across the process boundary), so
    this variant skips the object-to-dict conversion.
    """
    return {
        "traceEvents": list(metadata) + list(event_dicts),
        "displayTimeUnit": "ms",
        "otherData": _other_data(dropped, total),
    }


def tracer_to_dict(tracer, events=None):
    """Trace object for ``tracer`` (optionally a pre-sliced event list).

    The ``otherData`` counters are always the *tracer's* lifetime
    totals, even for a pre-sliced event list — they answer "is this
    file missing anything the tracer saw", not "how long is it".
    """
    if events is None:
        events = list(tracer.buffer)
    return to_trace_dict(events, metadata=tracer.registry.metadata_events,
                         dropped=tracer.buffer.dropped,
                         total=tracer.buffer.total)


def dumps(tracer, events=None):
    """The trace as a JSON string."""
    return json.dumps(tracer_to_dict(tracer, events=events))


def write_trace(path, tracer, events=None):
    """Write the trace JSON to ``path``; returns the path."""
    return write_trace_dict(path, tracer_to_dict(tracer, events=events))


def write_trace_dict(path, trace_dict):
    """Write an assembled trace object to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(trace_dict, handle)
        handle.write("\n")
    return path


def trace_summary(trace_dict, top=5):
    """Human-readable lines summarizing an exported trace object.

    Counts events by category, and lists the ``top`` longest complete
    spans — the quick who-is-slow view the ``repro trace`` CLI prints.
    """
    events = trace_dict["traceEvents"]
    by_category = {}
    spans = []
    counters = 0
    instants = 0
    opens = 0
    for event in events:
        ph = event.get("ph")
        if ph == PHASE_METADATA:
            continue
        by_category[event.get("cat", "?")] = (
            by_category.get(event.get("cat", "?"), 0) + 1)
        if ph == PHASE_COMPLETE:
            spans.append(event)
        elif ph == PHASE_COUNTER:
            counters += 1
        elif ph == PHASE_INSTANT:
            instants += 1
        elif ph in (PHASE_BEGIN, PHASE_END):
            opens += 1
    lines = ["%d trace event(s): %d span(s), %d begin/end, %d instant(s), "
             "%d counter sample(s)"
             % (len(events), len(spans), opens, instants, counters)]
    for category in sorted(by_category):
        lines.append("  %-10s %d" % (category, by_category[category]))
    other = trace_dict.get("otherData", {})
    total = other.get("events_total")
    dropped = other.get("dropped_events", 0)
    if total is not None:
        lines.append("ring buffer: %d event(s) recorded, %d dropped"
                     % (total, dropped))
    if dropped:
        lines.append("  WARNING: trace is TRUNCATED — the oldest %d "
                     "event(s) were overwritten" % dropped)
    spans.sort(key=lambda event: event.get("dur", 0.0), reverse=True)
    if spans:
        lines.append("longest spans:")
        for event in spans[:top]:
            lines.append("  %-24s %10.1f us  (pid %s tid %s)"
                         % (event["name"], event.get("dur", 0.0),
                            event["pid"], event["tid"]))
    return lines
