"""Merging worker trace timelines into one batch timeline.

Every pool worker traces into its own private
:class:`~repro.telemetry.tracer.Tracer`, so every worker numbers its
tracks from scratch: pid 1 is *its* control process, pid 2 *its* first
browser. Concatenating raw worker exports would pile unrelated
sessions onto colliding pid/tid tracks. :class:`TraceMerger` remaps
each worker's pids into one coherent namespace — every (worker, pid)
pair gets a fresh pid in the merged timeline, track-naming ``M``
metadata follows along (suffixed with the worker id, so trace_viewer
shows ``repro driver [w0]``, ``BrowserWindow 0 [w1]``, ...), and tids
pass through unchanged (they are already unique within their pid).

The merger works on exported event *dicts* (what
:meth:`~repro.telemetry.events.TraceEvent.to_dict` produces). What
actually crosses the process boundary nowadays is the packed wire
slice — raw fixed-width record bytes plus the worker's string-intern
tables (:meth:`~repro.telemetry.packed.PackedRingBuffer.wire_slice`);
:meth:`TraceMerger.add_session` detects those, decodes them against
the shipped tables (so every worker's interned name/category ids
resolve in its own namespace before remapping), and then remaps pids
exactly as it does for plain dict slices. Timestamps are preserved:
each worker's ``ts`` is relative to its own tracer start, which for a
pool means "since the worker began", so sessions overlap on the merged
timeline the way they overlapped in wall-clock reality (modulo worker
spawn skew, which is microseconds under fork).
"""


class TraceMerger:
    """Accumulates per-worker event slices into one merged trace."""

    def __init__(self, first_pid=1):
        self._pids = {}          # (worker_id, pid) -> merged pid
        self._next_pid = first_pid
        self._seen_metadata = set()
        #: Remapped track-naming metadata events (dicts), deduplicated.
        self.metadata = []
        #: Remapped trace events (dicts) across every absorbed session.
        self.events = []
        #: Ring-buffer drop count summed over workers.
        self.dropped = 0

    def add_session(self, worker_id, events, metadata=()):
        """Absorb one session slice from ``worker_id``.

        ``events`` is either a list of exported event dicts or a
        packed wire slice straight off the result queue (decoded here
        against its own intern tables); ``metadata`` is always dicts.
        Returns ``(events, metadata)`` remapped copies so the caller
        can also write a standalone per-session trace file that lines
        up with the merged timeline.
        """
        from repro.telemetry.packed import decode_wire_slice, is_wire_slice

        if is_wire_slice(events):
            events = [event.to_dict()
                      for event in decode_wire_slice(events)]
        metadata_out = []
        for event in metadata:
            remapped = self._remap(worker_id, event)
            metadata_out.append(remapped)
            key = (worker_id, event["name"], event["pid"], event["tid"])
            if key not in self._seen_metadata:
                self._seen_metadata.add(key)
                self.metadata.append(remapped)
        events_out = [self._remap(worker_id, event) for event in events]
        self.events.extend(events_out)
        return events_out, metadata_out

    def trace_dict(self):
        """The merged exportable trace object."""
        from repro.telemetry.export import to_trace_dict_raw

        return to_trace_dict_raw(self.events, metadata=self.metadata,
                                 dropped=self.dropped,
                                 total=len(self.events) + self.dropped)

    # -- remapping -----------------------------------------------------------

    def merged_pid(self, worker_id, pid):
        """The merged-timeline pid for ``pid`` as seen by ``worker_id``."""
        key = (worker_id, pid)
        merged = self._pids.get(key)
        if merged is None:
            merged = self._next_pid
            self._next_pid += 1
            self._pids[key] = merged
        return merged

    def _remap(self, worker_id, event):
        remapped = dict(event)
        merged_pid = self.merged_pid(worker_id, event["pid"])
        remapped["pid"] = merged_pid
        if event.get("ph") == "M" and event["name"] == "process_name":
            args = dict(event.get("args") or {})
            args["name"] = "%s [w%d]" % (args.get("name", "?"), worker_id)
            remapped["args"] = args
        elif event.get("ph") == "M" and event["name"] == "process_sort_index":
            # Keep the merged timeline ordered by merged pid, not by
            # each worker's local numbering.
            remapped["args"] = {"sort_index": merged_pid}
        return remapped

    def __repr__(self):
        return "TraceMerger(%d workers, %d pids, %d events)" % (
            len({worker for worker, _ in self._pids}), len(self._pids),
            len(self.events),
        )
