"""The process-wide tracer.

One :class:`Tracer` records every instrumented boundary into a bounded
ring buffer. Timestamps are wall-clock microseconds (``perf_counter``)
relative to the tracer's start, matching the Chrome trace-event ``ts``
convention; when a :class:`~repro.util.clock.VirtualClock` is attached
(:attr:`Tracer.clock`), every event additionally carries the virtual
time in its ``args`` (``vt_ms``), so the simulated timeline and the
real one can be correlated in the viewer.

Call sites keep the tracing-off cost to a guard check by fetching the
installed tracer once (``telemetry.current()``) and doing nothing when
it is ``None``; the emit methods here are only ever reached with
tracing on.
"""

import time

from repro.telemetry.events import (
    DEFAULT_BUFFER_SIZE,
    PHASE_ASYNC_BEGIN,
    PHASE_ASYNC_END,
    PHASE_BEGIN,
    PHASE_COMPLETE,
    PHASE_COUNTER,
    PHASE_END,
    PHASE_INSTANT,
    RingBuffer,
    TraceEvent,
)
from repro.telemetry.tracks import TrackRegistry


class _Span:
    """Context manager emitting one complete (``X``) event on exit.

    Entering yields the event's ``args`` dict so the body can attach
    results computed inside the span (box counts, match counts, ...).
    """

    __slots__ = ("_tracer", "_name", "_track", "_cat", "_args", "_start")

    def __init__(self, tracer, name, track, cat, args):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._cat = cat
        self._args = args if args is not None else {}
        self._start = 0.0

    def __enter__(self):
        self._start = self._tracer.now_us()
        return self._args

    def __exit__(self, exc_type, exc_value, traceback):
        self._tracer.complete(self._name, self._start, track=self._track,
                              cat=self._cat, args=self._args)
        return False


class Tracer:
    """Records trace events into a bounded ring buffer."""

    def __init__(self, buffer_size=DEFAULT_BUFFER_SIZE, clock=None,
                 registry=None, origin=None):
        self.buffer = RingBuffer(buffer_size)
        self.registry = registry if registry is not None else TrackRegistry()
        #: Optional VirtualClock stamped into every event's args. The
        #: batch runner repoints this per run (one clock per browser).
        self.clock = clock
        self._origin = time.perf_counter() if origin is None else origin

    # -- time ---------------------------------------------------------------

    def now_us(self):
        """Wall-clock microseconds since the tracer started."""
        return (time.perf_counter() - self._origin) * 1e6

    def to_us(self, perf_counter_seconds):
        """Convert an absolute ``perf_counter()`` reading to trace time."""
        return (perf_counter_seconds - self._origin) * 1e6

    # -- emission -----------------------------------------------------------

    def _emit(self, name, ph, ts, track, dur=None, cat=None, args=None,
              event_id=None):
        pid, tid = self.registry.for_object(track)
        if self.clock is not None:
            args = dict(args) if args else {}
            args["vt_ms"] = self.clock.now()
        event = TraceEvent(name, ph, ts, pid, tid, dur=dur, cat=cat,
                           args=args, id=event_id)
        self.buffer.append(event)
        return event

    def begin(self, name, track=None, cat=None, args=None):
        """Open a duration (``B``) span on the track; pair with end()."""
        return self._emit(name, PHASE_BEGIN, self.now_us(), track,
                          cat=cat, args=args)

    def end(self, name="", track=None, cat=None, args=None):
        """Close the innermost open ``B`` span on the track."""
        return self._emit(name, PHASE_END, self.now_us(), track, cat=cat,
                          args=args)

    def complete(self, name, start_us, track=None, cat=None, args=None,
                 end_us=None):
        """Record a complete (``X``) span started at ``start_us``."""
        if end_us is None:
            end_us = self.now_us()
        return self._emit(name, PHASE_COMPLETE, start_us, track,
                          dur=max(0.0, end_us - start_us), cat=cat,
                          args=args)

    def complete_between(self, name, start_perf_counter, track=None,
                         cat=None, args=None):
        """``X`` span from an absolute ``perf_counter()`` start to now."""
        return self.complete(name, self.to_us(start_perf_counter),
                             track=track, cat=cat, args=args)

    def async_begin(self, name, event_id, track=None, cat=None, args=None):
        """Open an async (``b``) span; pair with async_end on cat + id.

        Async spans may overlap sync spans and each other freely — they
        model durations that cross threads, like IPC queue residency.
        """
        return self._emit(name, PHASE_ASYNC_BEGIN, self.now_us(), track,
                          cat=cat, args=args, event_id=event_id)

    def async_end(self, name, event_id, track=None, cat=None, args=None):
        """Close the async span opened with the same cat + id."""
        return self._emit(name, PHASE_ASYNC_END, self.now_us(), track,
                          cat=cat, args=args, event_id=event_id)

    def instant(self, name, track=None, cat=None, args=None):
        """A zero-duration tick on the track."""
        return self._emit(name, PHASE_INSTANT, self.now_us(), track,
                          cat=cat, args=args)

    def counter(self, name, values, track=None, cat=None):
        """A counter (``C``) sample; ``values`` maps series to numbers."""
        return self._emit(name, PHASE_COUNTER, self.now_us(), track,
                          cat=cat, args=dict(values))

    def span(self, name, track=None, cat=None, args=None):
        """Context manager recording the body as an ``X`` event."""
        return _Span(self, name, track, cat, args)

    # -- buffer slicing (per-trace exports in a batch) ----------------------

    def mark(self):
        """Opaque position marker for :meth:`events_since`."""
        return self.buffer.total

    def events_since(self, mark):
        """Events recorded after ``mark`` still held by the buffer."""
        return self.buffer.since(mark)

    def __repr__(self):
        return "Tracer(%r)" % (self.buffer,)
