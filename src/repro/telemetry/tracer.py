"""The process-wide tracer.

One :class:`Tracer` records every instrumented boundary into a bounded
ring buffer — by default the packed binary ring
(:class:`~repro.telemetry.packed.PackedRingBuffer`), so an emission is
interning plus one ``pack_into``, not object construction. Timestamps
are wall-clock microseconds (``perf_counter``) relative to the
tracer's start, matching the Chrome trace-event ``ts`` convention;
when a :class:`~repro.util.clock.VirtualClock` is attached
(:attr:`Tracer.clock`), every event additionally carries the virtual
time (``vt_ms`` in its exported ``args``), so the simulated timeline
and the real one can be correlated in the viewer.

Three mechanisms keep the always-on cost flat:

- **category filtering** — ``categories=`` compiles down to one dict
  lookup per emit: a disabled category's state is ``False`` and the
  emit returns before touching the clock or the buffer. Call sites
  with non-trivial argument setup ask :meth:`Tracer.wants` first.
- **deterministic sampling** — ``sample=`` (a global rate or a
  per-category dict) drives a seeded per-category
  :class:`~repro.telemetry.packed.Sampler`. Only *leaf* phases are
  sampled (``X``/``i``/``C``); begin/end and async pairs always
  record, so sampling can never unbalance the span structure.
- **interning and memoization** — names and categories become
  small-int table ids; track objects resolve through
  ``registry.for_object`` once and hit a per-tracer memo after that.

Args dicts are stashed by reference and materialized only at export:
ownership transfers to the tracer on emit (don't mutate a dict after
passing it), the caller's dict itself is never mutated, and callable
arg values are invoked at decode time — pass a bound method to defer
an expensive string encoding.

Call sites keep the tracing-off cost to a guard check by fetching the
installed tracer once (``telemetry.current()``) and doing nothing when
it is ``None``; the emit methods here are only ever reached with
tracing on.
"""

import time
from time import perf_counter as _perf_counter

from repro.telemetry.events import DEFAULT_BUFFER_SIZE, RingBuffer, TraceEvent
from repro.telemetry.packed import (
    PH_ASYNC_BEGIN,
    PH_ASYNC_END,
    PH_BEGIN,
    PH_COMPLETE,
    PH_COUNTER,
    PH_END,
    PH_INSTANT,
    PHASE_CHARS,
    PackedRingBuffer,
    Sampler,
    materialize_args,
)
from repro.telemetry.tracks import SESSION_TRACK, TrackRegistry

#: The category set a production replay farm leaves on: the session
#: narrative, network tape activity, chaos injections, and recorder
#: output — no per-dispatch, per-IPC-message, or per-cache-delta
#: events. ``categories="production"`` selects it.
PRODUCTION_CATEGORIES = frozenset(
    {"session", "net", "chaos", "recorder"})


def resolve_categories(spec):
    """Normalize a ``categories=`` spec to None (all) or a frozenset.

    Accepts ``None``/``"all"`` (everything), ``"production"``
    (:data:`PRODUCTION_CATEGORIES`), a comma-separated string — in
    which the names ``all``/``production`` expand in place, so
    ``"production,dispatch"`` is the production set plus dispatch —
    or any iterable of category names.
    """
    if spec is None or spec == "all":
        return None
    if isinstance(spec, str):
        names = {part.strip() for part in spec.split(",") if part.strip()}
    else:
        names = set(spec)
    if "all" in names:
        return None
    if "production" in names:
        names.discard("production")
        names.update(PRODUCTION_CATEGORIES)
    return frozenset(names)


def parse_category_spec(spec):
    """Split a ``categories=`` spec into ``(categories, sample rates)``.

    In a string spec, any comma-separated term may carry a
    deterministic sampling rate as ``name:rate`` — e.g.
    ``"session,dispatch:0.1"`` enables both categories and keeps ~10%
    of dispatch's discrete events (seeded, so the same seed keeps the
    same events). Rates attach to concrete category names, not to the
    ``all``/``production`` aliases. Non-string specs and specs without
    rates pass through with empty rates.
    """
    rates = {}
    if isinstance(spec, str) and ":" in spec:
        names = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, rate = part.partition(":")
            name = name.strip()
            if sep:
                rates[name] = float(rate)
            names.append(name)
        spec = ",".join(names) if names else None
    return resolve_categories(spec), rates


class _Span:
    """Context manager emitting one complete (``X``) event on exit.

    Entering yields the event's ``args`` dict so the body can attach
    results computed inside the span (box counts, match counts, ...).
    """

    __slots__ = ("_tracer", "_name", "_track", "_cat", "_args", "_start")

    def __init__(self, tracer, name, track, cat, args):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._cat = cat
        self._args = args if args is not None else {}
        self._start = 0.0

    def __enter__(self):
        self._start = self._tracer.now_us()
        return self._args

    def __exit__(self, exc_type, exc_value, traceback):
        self._tracer.complete(self._name, self._start, track=self._track,
                              cat=self._cat, args=self._args)
        return False


class Tracer:
    """Records trace events into a bounded ring buffer.

    ``packed=True`` (the default) stores fixed-width binary records
    decoded only at export; ``packed=False`` keeps the legacy
    object-per-event ring — the reference implementation the packed
    path's round-trip tests compare against.
    """

    def __init__(self, buffer_size=DEFAULT_BUFFER_SIZE, clock=None,
                 registry=None, origin=None, categories=None, sample=None,
                 sample_seed=0, packed=True):
        self.packed = bool(packed)
        if self.packed:
            self.buffer = PackedRingBuffer(buffer_size)
        else:
            self.buffer = RingBuffer(buffer_size)
        self.registry = registry if registry is not None else TrackRegistry()
        #: Optional VirtualClock stamped into every event's args. The
        #: batch runner repoints this per run (one clock per browser).
        self.clock = clock
        self._origin = time.perf_counter() if origin is None else origin
        #: None means every category records; a frozenset enables only
        #: its members (events with no category always record).
        self.categories, spec_rates = parse_category_spec(categories)
        # Explicit sample= entries win over rates embedded in the spec.
        if sample is None:
            self._sample = spec_rates
        elif isinstance(sample, dict):
            self._sample = {**spec_rates, **sample}
        else:
            # A bare number is the default rate for every category.
            self._sample = {**spec_rates, None: float(sample)}
        self.sample_seed = int(sample_seed)
        #: cat -> False (disabled) | (sampler_or_None, cat_id, cat).
        self._cat_state = {}
        #: id(track object) -> (pid, tid); pins keep the ids stable.
        self._tracks = {}
        self._track_pins = []
        self._emit = self._emit_packed if self.packed else self._emit_legacy

    # -- time ---------------------------------------------------------------

    def now_us(self):
        """Wall-clock microseconds since the tracer started."""
        return (time.perf_counter() - self._origin) * 1e6

    def to_us(self, perf_counter_seconds):
        """Convert an absolute ``perf_counter()`` reading to trace time."""
        return (perf_counter_seconds - self._origin) * 1e6

    # -- the emit guard ------------------------------------------------------

    def wants(self, cat):
        """True when ``cat`` records; THE pre-check for guarded sites.

        One dict lookup after the first call per category. Call sites
        that do any work to assemble an event (args dicts, ids,
        formatted names) gate on this so a disabled category costs
        nothing but the check.
        """
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        return state is not False

    def _resolve_cat(self, cat):
        """Compile and memoize the emit-guard state for one category."""
        cats = self.categories
        if cats is not None and cat is not None and cat not in cats:
            state = False
        else:
            rate = self._sample.get(cat, self._sample.get(None))
            sampler = (Sampler(cat or "", rate, self.sample_seed)
                       if rate is not None and rate < 1.0 else None)
            cat_id = (self.buffer.cats.intern(cat)
                      if self.packed and cat is not None else None)
            state = (sampler, cat_id, cat)
        self._cat_state[cat] = state
        return state

    # -- emission -----------------------------------------------------------

    def _track(self, track):
        """Memoized ``registry.for_object`` (the hot-path bypass)."""
        key = id(track)
        entry = self._tracks.get(key)
        if entry is None:
            entry = self.registry.for_object(track)
            self._tracks[key] = entry
            self._track_pins.append(track)
        return entry

    # The packed emit bodies are deliberately flattened into the hot
    # public methods (begin/end/complete/instant): at ~1 us per event,
    # every spare call frame on this path is measurable. The colder
    # async/counter methods still route through the _emit dispatcher.

    def _emit_packed(self, name, ph, ts, track, dur, state, args, event_id):
        if track is None:
            pid, tid = SESSION_TRACK
        elif type(track) is tuple:
            pid, tid = track
        else:
            pid, tid = self._track(track)
        clock = self.clock
        self.buffer.append(ph, name, state[1], pid, tid, ts, dur,
                           clock.now() if clock is not None else None,
                           args, event_id)
        return None

    def _emit_legacy(self, name, ph, ts, track, dur, state, args, event_id):
        if track is None:
            pid, tid = SESSION_TRACK
        elif type(track) is tuple:
            pid, tid = track
        else:
            pid, tid = self._track(track)
        clock = self.clock
        # Same materialization the packed path defers to export: fresh
        # dict, deferred callables and encoder tuples resolved.
        args = materialize_args(
            args, clock.now() if clock is not None else None)
        self.buffer.append(TraceEvent(name, PHASE_CHARS[ph], ts, pid, tid,
                                      dur=dur, cat=state[2], args=args,
                                      id=event_id))
        return None

    def begin(self, name, track=None, cat=None, args=None):
        """Open a duration (``B``) span on the track; pair with end()."""
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        if not self.packed:
            return self._emit_legacy(name, PH_BEGIN, self.now_us(), track,
                                     None, state, args, None)
        if track is None:
            pid, tid = SESSION_TRACK
        elif type(track) is tuple:
            pid, tid = track
        else:
            pid, tid = self._track(track)
        clock = self.clock
        self.buffer.append(PH_BEGIN, name, state[1], pid, tid,
                           (_perf_counter() - self._origin) * 1e6, None,
                           clock.now() if clock is not None else None,
                           args, None)
        return None

    def end(self, name="", track=None, cat=None, args=None):
        """Close the innermost open ``B`` span on the track."""
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        if not self.packed:
            return self._emit_legacy(name, PH_END, self.now_us(), track,
                                     None, state, args, None)
        if track is None:
            pid, tid = SESSION_TRACK
        elif type(track) is tuple:
            pid, tid = track
        else:
            pid, tid = self._track(track)
        clock = self.clock
        self.buffer.append(PH_END, name, state[1], pid, tid,
                           (_perf_counter() - self._origin) * 1e6, None,
                           clock.now() if clock is not None else None,
                           args, None)
        return None

    def complete(self, name, start_us, track=None, cat=None, args=None,
                 end_us=None):
        """Record a complete (``X``) span started at ``start_us``."""
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        sampler = state[0]
        if sampler is not None and not sampler.keep():
            return None
        if end_us is None:
            end_us = (_perf_counter() - self._origin) * 1e6
        dur = end_us - start_us
        if dur < 0.0:
            dur = 0.0
        if not self.packed:
            return self._emit_legacy(name, PH_COMPLETE, start_us, track,
                                     dur, state, args, None)
        if track is None:
            pid, tid = SESSION_TRACK
        elif type(track) is tuple:
            pid, tid = track
        else:
            pid, tid = self._track(track)
        clock = self.clock
        self.buffer.append(PH_COMPLETE, name, state[1], pid, tid, start_us,
                           dur, clock.now() if clock is not None else None,
                           args, None)
        return None

    def complete_between(self, name, start_perf_counter, track=None,
                         cat=None, args=None):
        """``X`` span from an absolute ``perf_counter()`` start to now."""
        return self.complete(name, self.to_us(start_perf_counter),
                             track=track, cat=cat, args=args)

    def async_begin(self, name, event_id, track=None, cat=None, args=None):
        """Open an async (``b``) span; pair with async_end on cat + id.

        Async spans may overlap sync spans and each other freely — they
        model durations that cross threads, like IPC queue residency.
        """
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        return self._emit(name, PH_ASYNC_BEGIN, self.now_us(), track, None,
                          state, args, event_id)

    def async_end(self, name, event_id, track=None, cat=None, args=None):
        """Close the async span opened with the same cat + id."""
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        return self._emit(name, PH_ASYNC_END, self.now_us(), track, None,
                          state, args, event_id)

    def instant(self, name, track=None, cat=None, args=None):
        """A zero-duration tick on the track."""
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        sampler = state[0]
        if sampler is not None and not sampler.keep():
            return None
        if not self.packed:
            return self._emit_legacy(name, PH_INSTANT, self.now_us(), track,
                                     None, state, args, None)
        if track is None:
            pid, tid = SESSION_TRACK
        elif type(track) is tuple:
            pid, tid = track
        else:
            pid, tid = self._track(track)
        clock = self.clock
        self.buffer.append(PH_INSTANT, name, state[1], pid, tid,
                           (_perf_counter() - self._origin) * 1e6, None,
                           clock.now() if clock is not None else None,
                           args, None)
        return None

    def counter(self, name, values, track=None, cat=None):
        """A counter (``C``) sample; ``values`` maps series to numbers."""
        state = self._cat_state.get(cat)
        if state is None:
            state = self._resolve_cat(cat)
        if state is False:
            return None
        sampler = state[0]
        if sampler is not None and not sampler.keep():
            return None
        return self._emit(name, PH_COUNTER, self.now_us(), track, None,
                          state, dict(values), None)

    def span(self, name, track=None, cat=None, args=None):
        """Context manager recording the body as an ``X`` event."""
        return _Span(self, name, track, cat, args)

    # -- buffer slicing (per-trace exports in a batch) ----------------------

    def mark(self):
        """Opaque position marker for :meth:`events_since`."""
        return self.buffer.total

    def events_since(self, mark):
        """Events recorded after ``mark`` still held by the buffer."""
        return self.buffer.since(mark)

    def wire_slice(self, mark):
        """Packed, picklable events-since-``mark`` for the pool wire."""
        return self.buffer.wire_slice(mark)

    def __repr__(self):
        return "Tracer(%r)" % (self.buffer,)
