"""Chrome trace-event tracing across the browser, replay, and session layers.

The observability counterpart to :mod:`repro.perf`'s flat counters: a
process-wide :class:`~repro.telemetry.tracer.Tracer` records nestable
duration spans, instants, and counter samples from every instrumented
boundary — IPC send/pump, WebKit input handling, DOM event dispatch,
layout reflow, XPath compile/evaluate, recorder command emission, and
the session engine's schedule → locate → act → observe pipeline — into
a bounded ring buffer, exported as Chrome trace-event JSON loadable in
``chrome://tracing`` (catapult's trace_viewer) or Perfetto.

Tracing is **off by default** and costs instrumented code exactly one
guard check (``telemetry.current() is None``) while off; the telemetry
benchmark pins that overhead below 5%. Enable it for a region::

    from repro import telemetry

    with telemetry.tracing(out="trace.json", clock=browser.clock):
        replayer.replay(trace)

or from the shell with ``python -m repro replay --trace-out trace.json``
/ ``python -m repro trace``. While installed, the tracer also bridges
:mod:`repro.perf` counter activity into counter events, so cache
effectiveness renders on the same timeline as the spans.
"""

from contextlib import contextmanager

from repro import perf
from repro.telemetry.events import (
    DEFAULT_BUFFER_SIZE,
    RingBuffer,
    TraceEvent,
)
from repro.telemetry.export import (
    dumps,
    to_trace_dict,
    to_trace_dict_raw,
    trace_summary,
    tracer_to_dict,
    write_trace,
    write_trace_dict,
)
from repro.telemetry.merge import TraceMerger
from repro.telemetry.tracer import Tracer
from repro.telemetry.tracks import (
    CHAOS_TRACK,
    COUNTERS_TRACK,
    LOCATOR_TRACK,
    NET_TRACK,
    RECORDER_TRACK,
    SESSION_TRACK,
    TrackRegistry,
)

_tracer = None


def current():
    """The installed tracer, or None while tracing is off.

    This is THE guard instrumented code checks; everything else in the
    subsystem is only reached when it returns a tracer.
    """
    return _tracer


def enabled():
    """True while a tracer is installed."""
    return _tracer is not None


def _perf_bridge(name, hits, misses):
    """repro.perf hook: mirror counter updates as counter events."""
    tracer = _tracer
    if tracer is not None:
        tracer.counter("perf.%s" % name, {"hits": hits, "misses": misses},
                       track=COUNTERS_TRACK, cat="perf")


def install(tracer):
    """Install ``tracer`` process-wide; returns it.

    Also hooks :mod:`repro.perf` so cache hit/miss activity streams
    into counter events. Nested installs are refused — the tracer is a
    process-wide singleton, like the fast-path toggle.
    """
    global _tracer
    if _tracer is not None:
        raise RuntimeError("a tracer is already installed")
    _tracer = tracer
    perf.set_counter_observer(_perf_bridge)
    return tracer


def uninstall():
    """Remove the installed tracer (no-op when tracing is off)."""
    global _tracer
    _tracer = None
    perf.set_counter_observer(None)


@contextmanager
def tracing(out=None, buffer_size=DEFAULT_BUFFER_SIZE, clock=None,
            tracer=None):
    """Enable tracing for a ``with`` block.

    Installs ``tracer`` (or a fresh one with ``buffer_size`` and the
    optional VirtualClock ``clock``), uninstalls it on exit, and — when
    ``out`` is given — writes the Chrome trace JSON there. Yields the
    tracer.
    """
    active = tracer if tracer is not None else Tracer(
        buffer_size=buffer_size, clock=clock)
    install(active)
    try:
        yield active
    finally:
        uninstall()
        if out is not None:
            write_trace(out, active)


# Imported last: the observer pulls in the session layer, which itself
# guards on telemetry.current() at runtime.
from repro.telemetry.observer import TracingObserver  # noqa: E402

__all__ = [
    "CHAOS_TRACK",
    "COUNTERS_TRACK",
    "DEFAULT_BUFFER_SIZE",
    "LOCATOR_TRACK",
    "NET_TRACK",
    "RECORDER_TRACK",
    "RingBuffer",
    "SESSION_TRACK",
    "TraceEvent",
    "TraceMerger",
    "Tracer",
    "TracingObserver",
    "TrackRegistry",
    "current",
    "dumps",
    "enabled",
    "install",
    "to_trace_dict",
    "to_trace_dict_raw",
    "trace_summary",
    "tracer_to_dict",
    "tracing",
    "uninstall",
    "write_trace",
    "write_trace_dict",
]
