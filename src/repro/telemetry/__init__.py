"""Chrome trace-event tracing across the browser, replay, and session layers.

The observability counterpart to :mod:`repro.perf`'s flat counters: a
process-wide :class:`~repro.telemetry.tracer.Tracer` records nestable
duration spans, instants, and counter samples from every instrumented
boundary — IPC send/pump, WebKit input handling, DOM event dispatch,
layout reflow, XPath compile/evaluate, recorder command emission, and
the session engine's schedule → locate → act → observe pipeline — into
a bounded ring buffer, exported as Chrome trace-event JSON loadable in
``chrome://tracing`` (catapult's trace_viewer) or Perfetto.

Tracing is **off by default** and costs instrumented code exactly one
guard check (``telemetry.current() is None``) while off; the telemetry
benchmark pins that overhead below 5%. Enable it for a region::

    from repro import telemetry

    with telemetry.tracing(out="trace.json", clock=browser.clock):
        replayer.replay(trace)

or from the shell with ``python -m repro replay --trace-out trace.json``
/ ``python -m repro trace``. While installed, the tracer also bridges
:mod:`repro.perf` counter activity into counter events, so cache
effectiveness renders on the same timeline as the spans.

Tracing can also stay **on in production**: events land in a packed
binary ring buffer (see :mod:`repro.telemetry.packed`) and
``categories="production"`` restricts recording to the session
narrative, network, chaos, and recorder lanes — the telemetry
benchmark pins that configuration below 10% replay overhead. Any
category set, plus deterministic sampling, is selectable::

    with telemetry.tracing(out="trace.json", categories="production",
                           sample={"session": 0.25}, sample_seed=7):
        runner.run(traces)

(``--trace-categories`` on the CLI). The default remains ``"all"``.
"""

from contextlib import contextmanager

from repro import perf
from repro.telemetry.events import (
    DEFAULT_BUFFER_SIZE,
    RingBuffer,
    TraceEvent,
)
from repro.telemetry.export import (
    dumps,
    to_trace_dict,
    to_trace_dict_raw,
    trace_summary,
    tracer_to_dict,
    write_trace,
    write_trace_dict,
)
from repro.telemetry.merge import TraceMerger
from repro.telemetry.packed import PackedRingBuffer, Sampler, StringTable
from repro.telemetry.tracer import (
    PRODUCTION_CATEGORIES,
    Tracer,
    parse_category_spec,
    resolve_categories,
)
from repro.telemetry.tracks import (
    CHAOS_TRACK,
    COUNTERS_TRACK,
    LOCATOR_TRACK,
    NET_TRACK,
    RECORDER_TRACK,
    SESSION_TRACK,
    TrackRegistry,
)

_tracer = None

#: The installed tracer *iff* it records the ``dispatch`` category,
#: else None. DOM event dispatch is the hottest guard site in the
#: process (thousands of calls per replay), so it reads this one
#: attribute instead of calling :func:`current` and then ``wants()`` —
#: one load and a None check whether tracing is off or the installed
#: tracer filters dispatch out, which keeps a production-category
#: tracer from taxing every dispatch. Maintained by :func:`install` /
#: :func:`uninstall`; a tracer's category set is immutable once built,
#: so resolving once at install time is sound.
_dispatch_tracer = None


def current():
    """The installed tracer, or None while tracing is off.

    This is THE guard instrumented code checks; everything else in the
    subsystem is only reached when it returns a tracer.
    """
    return _tracer


def enabled():
    """True while a tracer is installed."""
    return _tracer is not None


def _perf_bridge(name, hits, misses):
    """repro.perf hook: mirror counter updates as counter events."""
    tracer = _tracer
    if tracer is not None:
        tracer.counter("perf.%s" % name, {"hits": hits, "misses": misses},
                       track=COUNTERS_TRACK, cat="perf")


def install(tracer):
    """Install ``tracer`` process-wide; returns it.

    Also hooks :mod:`repro.perf` so cache hit/miss activity streams
    into counter events — but only when the tracer records the
    ``perf`` category; with it filtered out the bridge is never
    attached and counter updates cost nothing extra. Nested installs
    are refused — the tracer is a process-wide singleton, like the
    fast-path toggle.
    """
    global _tracer, _dispatch_tracer
    if _tracer is not None:
        raise RuntimeError("a tracer is already installed")
    _tracer = tracer
    _dispatch_tracer = tracer if tracer.wants("dispatch") else None
    if tracer.wants("perf"):
        perf.set_counter_observer(_perf_bridge)
    return tracer


def uninstall():
    """Remove the installed tracer (no-op when tracing is off)."""
    global _tracer, _dispatch_tracer
    _tracer = None
    _dispatch_tracer = None
    perf.set_counter_observer(None)


@contextmanager
def tracing(out=None, buffer_size=DEFAULT_BUFFER_SIZE, clock=None,
            tracer=None, categories=None, sample=None, sample_seed=0):
    """Enable tracing for a ``with`` block.

    Installs ``tracer`` (or a fresh one with ``buffer_size``, the
    optional VirtualClock ``clock``, and the ``categories`` /
    ``sample`` / ``sample_seed`` emit-guard configuration — see
    :class:`~repro.telemetry.tracer.Tracer`), uninstalls it on exit,
    and — when ``out`` is given — writes the Chrome trace JSON there.
    Yields the tracer.
    """
    active = tracer if tracer is not None else Tracer(
        buffer_size=buffer_size, clock=clock, categories=categories,
        sample=sample, sample_seed=sample_seed)
    install(active)
    try:
        yield active
    finally:
        uninstall()
        if out is not None:
            write_trace(out, active)


# Imported last: the observer pulls in the session layer, which itself
# guards on telemetry.current() at runtime.
from repro.telemetry.observer import TracingObserver  # noqa: E402

__all__ = [
    "CHAOS_TRACK",
    "COUNTERS_TRACK",
    "DEFAULT_BUFFER_SIZE",
    "LOCATOR_TRACK",
    "NET_TRACK",
    "PRODUCTION_CATEGORIES",
    "PackedRingBuffer",
    "RECORDER_TRACK",
    "RingBuffer",
    "SESSION_TRACK",
    "Sampler",
    "StringTable",
    "TraceEvent",
    "TraceMerger",
    "Tracer",
    "TracingObserver",
    "TrackRegistry",
    "current",
    "dumps",
    "enabled",
    "install",
    "parse_category_spec",
    "resolve_categories",
    "to_trace_dict",
    "to_trace_dict_raw",
    "trace_summary",
    "tracer_to_dict",
    "tracing",
    "uninstall",
    "write_trace",
    "write_trace_dict",
]
