"""The pid/tid track model: BrowserWindow → Tab → Renderer.

Chrome trace viewers group events by process (``pid``) and thread
(``tid``). We map the paper's Figure 3 stack onto that model so a
replay renders as the multi-process timeline it simulates:

- pid 1 is the **control process** ("repro driver"): the session
  pipeline (schedule → locate → act), the locator machinery (XPath
  compile/evaluate), the perf-counter series, and the recorder lane;
- every :class:`~repro.browser.window.Browser` (BrowserWindow) gets its
  own pid, with tid 1 the browser-process side (IPC send/queue) and a
  fresh tid per :class:`~repro.browser.tab.Tab` and per tab's renderer
  (successive renderers of one tab — one per navigation — share the
  tab's renderer track, since only one is ever live).

The registry assigns ids lazily and emits the matching ``M`` metadata
events (``process_name``/``thread_name``/sort indexes) so the tracks
are labeled in trace_viewer/Perfetto.
"""

from repro.telemetry.events import PHASE_METADATA, TraceEvent

#: The control ("repro driver") process and its fixed threads.
CONTROL_PID = 1
TID_SESSION = 1
TID_LOCATOR = 2
TID_COUNTERS = 3
TID_RECORDER = 4
TID_CHAOS = 5
TID_NET = 6

#: (pid, tid) constants call sites can pass as a ``track``.
SESSION_TRACK = (CONTROL_PID, TID_SESSION)
LOCATOR_TRACK = (CONTROL_PID, TID_LOCATOR)
COUNTERS_TRACK = (CONTROL_PID, TID_COUNTERS)
RECORDER_TRACK = (CONTROL_PID, TID_RECORDER)
CHAOS_TRACK = (CONTROL_PID, TID_CHAOS)
NET_TRACK = (CONTROL_PID, TID_NET)

#: First pid handed to a browser (pid 1 is the control process).
FIRST_BROWSER_PID = 2


class TrackRegistry:
    """Assigns stable (pid, tid) pairs to browser-stack objects."""

    def __init__(self):
        self._browser_pids = {}
        self._tids = {}
        self._next_pid = FIRST_BROWSER_PID
        self._next_tid = {}
        #: Lazily grown ``M`` events naming every assigned track.
        self.metadata_events = []
        self._emit_process(CONTROL_PID, "repro driver", sort_index=0)
        for tid, name in ((TID_SESSION, "session pipeline"),
                          (TID_LOCATOR, "locator (xpath)"),
                          (TID_COUNTERS, "perf counters"),
                          (TID_RECORDER, "recorder"),
                          (TID_CHAOS, "chaos (fault injection)"),
                          (TID_NET, "net (transport/tape)")):
            self._emit_thread(CONTROL_PID, tid, name, sort_index=tid)

    # -- resolution ---------------------------------------------------------

    def for_object(self, obj):
        """(pid, tid) for a Browser, Tab, Renderer, or WebKitEngine.

        Tuples pass through unchanged; ``None`` and unknown objects land
        on the control process's session track.
        """
        if obj is None:
            return SESSION_TRACK
        if isinstance(obj, tuple):
            return obj
        from repro.browser.renderer import Renderer
        from repro.browser.tab import Tab
        from repro.browser.webkit import WebKitEngine
        from repro.browser.window import Browser

        if isinstance(obj, Browser):
            return (self._pid_for(obj), 1)
        if isinstance(obj, Tab):
            return self._tab_track(obj)
        if isinstance(obj, Renderer):
            return self._renderer_track(obj.tab)
        if isinstance(obj, WebKitEngine):
            # Sub-frame engines share their tab's renderer track.
            return self._renderer_track(obj.tab)
        return SESSION_TRACK

    # -- assignment ---------------------------------------------------------

    def _pid_for(self, browser):
        pid = self._browser_pids.get(id(browser))
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
            self._browser_pids[id(browser)] = pid
            ordinal = pid - FIRST_BROWSER_PID
            self._emit_process(pid, "BrowserWindow %d" % ordinal,
                               sort_index=pid)
            self._emit_thread(pid, 1, "browser (UI/IPC)", sort_index=0)
        return pid

    def _tab_track(self, tab):
        return self._assign(("tab", id(tab)), tab.browser,
                            "tab %d" % tab.tab_id)

    def _renderer_track(self, tab):
        return self._assign(("renderer", id(tab)), tab.browser,
                            "renderer (tab %d)" % tab.tab_id)

    def _assign(self, key, browser, name):
        track = self._tids.get(key)
        if track is None:
            pid = self._pid_for(browser)
            tid = self._next_tid.get(pid, 2)
            self._next_tid[pid] = tid + 1
            track = (pid, tid)
            self._tids[key] = track
            self._emit_thread(pid, tid, name, sort_index=tid)
        return track

    # -- metadata -----------------------------------------------------------

    def _emit_process(self, pid, name, sort_index):
        self.metadata_events.append(TraceEvent(
            "process_name", PHASE_METADATA, 0.0, pid, 0,
            args={"name": name}))
        self.metadata_events.append(TraceEvent(
            "process_sort_index", PHASE_METADATA, 0.0, pid, 0,
            args={"sort_index": sort_index}))

    def _emit_thread(self, pid, tid, name, sort_index):
        self.metadata_events.append(TraceEvent(
            "thread_name", PHASE_METADATA, 0.0, pid, tid,
            args={"name": name}))
        self.metadata_events.append(TraceEvent(
            "thread_sort_index", PHASE_METADATA, 0.0, pid, tid,
            args={"sort_index": sort_index}))

    def __repr__(self):
        return "TrackRegistry(%d browsers, %d tracks)" % (
            len(self._browser_pids), len(self._tids),
        )
