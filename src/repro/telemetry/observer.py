"""Tracing the session pipeline: a SessionObserver emitting spans.

The engine narrates every replay on its structured event stream
(:mod:`repro.session.events`); :class:`TracingObserver` turns that
narration into spans on the control process's *session pipeline* track:

- a ``session`` span covering the whole run (category ``session``),
- one complete (``X``) ``command`` event per command — stamped when the
  command starts, emitted once when it finishes, so the per-command
  narrative costs a single record — containing
- a ``locate`` span (command-started → located/relaxed; when location
  fails into the coordinate fallback or the command is a frame switch,
  the locate span absorbs the act) and an ``act`` span (located →
  acted) — plus the engine's ``session.schedule`` span — all under the
  finer ``session.phase`` category, so a production category set keeps
  the per-command narrative without the inner-phase events,

plus instants for navigation, failures, and halts (category
``session``), per-error ``page.error`` instants (category
``session.error``; production replaces them with one ``page.errors``
count — see :attr:`TracingObserver.ERROR_CAT`), and per-cache counter
samples from the session's perf delta (category ``perf``). The
observer is attached to every run by
:class:`~repro.session.engine.SessionRun` and does nothing (one guard
check per event) while tracing is off.

This is a hot per-event path with tracing on, so the dispatch table is
*compiled per installed tracer*: kinds whose whole category is
filtered out (locate/act phases, perf deltas) are dropped from the
table, making their events one failed dict lookup; a command's args
are stashed as one deferred encoder tuple (see
:func:`_command_args`) and a page error as its bound ``__str__``, so
those dicts and strings are only built if the trace is actually
exported.
"""

from time import perf_counter as _perf_counter

from repro.session.events import SessionEvent, SessionObserver
from repro.telemetry import current as _current
from repro.telemetry.packed import (
    F_ARGS,
    F_CAT,
    F_DUR,
    F_VT,
    PH_COMPLETE,
    RECORD_SIZE,
)
from repro.telemetry.tracks import COUNTERS_TRACK, SESSION_TRACK


def _command_args(started, finished):
    """Export-time encoder for one command event's args.

    The observer stashes ``(_command_args, started_event,
    finished_event)`` — one tuple of objects it was already handed —
    per command; the actual dict (command-line rendering, due time,
    status) is only built if the event reaches an export.
    """
    command = started.command
    return {"line": command.to_line(), "action": command.action,
            "due_vt_ms": started.data.get("due"),
            "status": finished.result.status}


#: Command records buffered before a batch pack (see :func:`_drain`).
_BATCH = 32


def _drain(fast, pending):
    """Pack the pending command records into the ring back to back.

    A lone ring write from inside the replay loop runs against cold
    tracer state — the command's own DOM and engine work has evicted
    the buffer, the struct packer, and the record page from cache by
    the time the next command finishes — and measures at several times
    its instruction count. Batching loads that state once per
    ``_BATCH`` commands; the per-command hot path is two tuples and a
    ``list.append``. ``fast`` is the observer's compiled tuple.
    """
    buffer, flags, flags_vt, cat_id, name_id, pid, tid, origin = fast
    total = buffer.total
    capacity = buffer.capacity
    pack = buffer._pack
    # _grow extends these in place, so the local bindings stay valid.
    args_slots = buffer._args
    data = buffer._data
    for start, end, vt, args in pending:
        slot = total % capacity
        if slot >= buffer._alloc:
            buffer._grow(slot + 1)
        args_slots[slot] = args
        dur = end - start
        pack(data, slot * RECORD_SIZE, PH_COMPLETE,
             flags if vt is None else flags_vt, cat_id, name_id, pid, tid,
             int((start - origin) * 1e9 + 0.5),
             int(dur * 1e9 + 0.5) if dur > 0.0 else 0,
             0.0 if vt is None else vt, 0)
        total += 1
    buffer.total = total
    del pending[:]


class TracingObserver(SessionObserver):
    """Emits session-pipeline spans for one run's event stream."""

    CAT = "session"
    #: The inner locate/act phase spans; disabled by the production
    #: category set while the command events stay on.
    PHASE_CAT = "session.phase"
    #: Per-error ``page.error`` instants. The engine flushes page
    #: errors in one burst when the session settles, so these carry no
    #: timing information and every error is already recorded verbatim
    #: in the replay report — the production category set drops them
    #: and gets a single ``page.errors`` count instant instead.
    ERROR_CAT = "session.error"

    def __init__(self, track=SESSION_TRACK):
        self.track = track
        #: Names of currently open B spans, innermost last.
        self._open = []
        #: The in-flight command's COMMAND_STARTED event and the raw
        #: perf_counter reading taken when it arrived; emitted as one X
        #: event when the command finishes.
        self._cmd_event = None
        self._cmd_start = 0.0
        #: The tracer the compiled dispatch table below was built for;
        #: rebuilt whenever a different tracer is installed.
        self._for = None
        self._phases = True
        self._perf = True
        self._errors = True
        self._table = self._TABLE
        #: Compiled per-command fast path (see ``_rebind``), or None.
        self._fast = None
        #: Finished commands awaiting their batched ring pack.
        self._pending = []

    def on_event(self, event):
        tracer = _current()
        if tracer is None:
            return
        if tracer is not self._for:
            self._rebind(tracer)
        handler = self._table.get(event.kind)
        if handler is not None:
            handler(self, event, tracer)

    def _rebind(self, tracer):
        """Compile the dispatch table for this tracer's category set.

        Kinds that could only ever emit into a filtered-out category
        are removed outright, so their (frequent) events cost one
        failed dict lookup instead of a handler call. When the
        ``session`` category records unsampled into a packed buffer on
        a plain (pid, tid) track — the always-on production shape —
        the per-command handlers additionally bypass the tracer's
        generic emit methods and batch their records for
        :func:`_drain` (``self._fast``); any sampler, a legacy object
        buffer, or an object-resolved track falls back to the generic
        path, which keeps identical semantics at a couple hundred ns
        more per event.
        """
        if self._pending and self._fast is not None:
            # Records batched for a previously installed tracer flush
            # into that tracer's buffer before this one takes over.
            _drain(self._fast, self._pending)
        self._for = tracer
        self._phases = tracer.wants(self.PHASE_CAT)
        self._perf = tracer.wants("perf")
        self._errors = tracer.wants(self.ERROR_CAT)
        table = dict(self._TABLE)
        if not self._phases:
            del table[SessionEvent.LOCATED]
            del table[SessionEvent.RELAXED]
            del table[SessionEvent.ACTED]
        if not self._perf:
            del table[SessionEvent.PERF_DELTA]
        if not self._errors:
            del table[SessionEvent.PAGE_ERROR]
        self._table = table
        self._fast = None
        if tracer.packed and type(self.track) is tuple:
            state = tracer._cat_state.get(self.CAT)
            if state is None:
                state = tracer._resolve_cat(self.CAT)
            if state is not False and state[0] is None:
                pid, tid = self.track
                buffer = tracer.buffer
                flags = F_CAT | F_DUR | F_ARGS
                self._fast = (buffer, flags, flags | F_VT,
                              state[1], buffer.names.intern("command"),
                              pid, tid, tracer._origin)
                if not self._phases:
                    # Phases filtered too (the production shape): no
                    # locate/act span can ever be open around a
                    # command, so the per-command handlers shrink to
                    # attribute stores and one list append.
                    table[SessionEvent.COMMAND_STARTED] = (
                        TracingObserver._on_command_started_fast)
                    table[SessionEvent.COMMAND_FINISHED] = (
                        TracingObserver._on_command_finished_fast)

    # -- span plumbing ------------------------------------------------------

    def _begin(self, tracer, name, args=None, cat=CAT):
        tracer.begin(name, track=self.track, cat=cat, args=args)
        self._open.append(name)

    def _end(self, tracer, args=None):
        name = self._open.pop()
        cat = self.PHASE_CAT if name in ("locate", "act") else self.CAT
        tracer.end(name, track=self.track, cat=cat, args=args)

    def _close_phases(self, tracer, args=None):
        """Close any open locate/act span (back down to the command)."""
        while self._open and self._open[-1] in ("locate", "act"):
            self._end(tracer, args=args)
            args = None

    # -- event hooks --------------------------------------------------------

    def _on_session_started(self, event, tracer):
        trace = event.data["trace"]
        self._open = []
        self._cmd_event = None
        if self._pending:
            # Leftovers from an aborted run drain before this run's
            # events so batch slicing (mark/events_since) stays honest.
            _drain(self._fast, self._pending)
        self._begin(tracer, "session", args={
            "label": trace.label or "",
            "start_url": trace.start_url,
            "commands": len(trace),
        })

    def _on_navigated(self, event, tracer):
        tracer.instant("navigated", track=self.track, cat=self.CAT,
                       args={"url": event.data["url"]})

    def _on_command_started(self, event, tracer):
        # Everything args-shaped is deferred: the event object itself
        # is stashed and only encoded (command line rendered, due time
        # and status read) if the command event reaches an export. The
        # timestamp too: a raw perf_counter reading, converted to
        # trace time at the batched pack (or on the generic path's
        # emit), keeping this handler to attribute stores.
        self._cmd_event = event
        self._cmd_start = _perf_counter()
        if self._phases:
            self._begin(tracer, "locate", cat=self.PHASE_CAT)

    def _on_command_started_fast(self, event, tracer):
        self._cmd_event = event
        self._cmd_start = _perf_counter()

    def _on_located(self, event, tracer):
        self._phase_to_act(event, tracer)

    def _on_relaxed(self, event, tracer):
        self._phase_to_act(event, tracer)

    def _phase_to_act(self, event, tracer):
        if self._open and self._open[-1] == "locate":
            self._end(tracer, args={"detail": event.detail or "exact"})
        self._begin(tracer, "act", cat=self.PHASE_CAT)

    def _on_acted(self, event, tracer):
        self._close_phases(tracer,
                           args={"detail": event.detail} if event.detail
                           else None)

    def _on_failed(self, event, tracer):
        self._close_phases(tracer)
        tracer.instant("command.failed", track=self.track, cat=self.CAT,
                       args={"error": str(event.error)})

    def _on_command_finished(self, event, tracer):
        open_ = self._open
        if open_ and open_[-1] in ("locate", "act"):
            self._close_phases(tracer)
        started = self._cmd_event
        if started is not None:
            self._cmd_event = None
            args = (_command_args, started, event)
            fast = self._fast
            if fast is None:
                tracer.complete("command", tracer.to_us(self._cmd_start),
                                track=self.track, cat=self.CAT, args=args)
                return
            clock = tracer.clock
            pending = self._pending
            pending.append((self._cmd_start, _perf_counter(),
                            clock.now() if clock is not None else None,
                            args))
            if len(pending) >= _BATCH:
                _drain(fast, pending)

    def _on_command_finished_fast(self, event, tracer):
        started = self._cmd_event
        if started is None:
            return
        self._cmd_event = None
        clock = tracer.clock
        pending = self._pending
        pending.append((self._cmd_start, _perf_counter(),
                        clock.now() if clock is not None else None,
                        (_command_args, started, event)))
        if len(pending) >= _BATCH:
            _drain(self._fast, pending)

    def _on_halted(self, event, tracer):
        if self._pending:
            _drain(self._fast, self._pending)
        tracer.instant("session.halted", track=self.track,
                       cat=self.CAT, args={"reason": event.detail})

    def _on_page_error(self, event, tracer):
        # Deferred like to_line: formatting the error message is paid
        # at export, not in the replay loop (a chatty page can emit
        # hundreds of these).
        tracer.instant("page.error", track=self.track, cat=self.ERROR_CAT,
                       args={"error": event.data["error"].__str__})

    def _on_perf_delta(self, event, tracer):
        for name, counts in sorted(event.data["counters"].items()):
            tracer.counter("session.cache.%s" % name,
                           {"hits": counts["hits"],
                            "misses": counts["misses"]},
                           track=COUNTERS_TRACK, cat="perf")

    def _on_session_finished(self, event, tracer):
        if self._pending:
            _drain(self._fast, self._pending)
        if not self._errors:
            # Per-error instants are filtered out: surface the count so
            # a production trace still flags that the page misbehaved
            # (the report carries the error details).
            errors = len(event.data["report"].page_errors)
            if errors:
                tracer.instant("page.errors", track=self.track,
                               cat=self.CAT, args={"count": errors})
        while self._open:
            self._end(tracer)

    #: event.kind -> handler; the full table. ``_rebind`` compiles the
    #: per-tracer working copy actually consulted on the hot path.
    _TABLE = {
        SessionEvent.SESSION_STARTED: _on_session_started,
        SessionEvent.NAVIGATED: _on_navigated,
        SessionEvent.COMMAND_STARTED: _on_command_started,
        SessionEvent.LOCATED: _on_located,
        SessionEvent.RELAXED: _on_relaxed,
        SessionEvent.ACTED: _on_acted,
        SessionEvent.FAILED: _on_failed,
        SessionEvent.COMMAND_FINISHED: _on_command_finished,
        SessionEvent.HALTED: _on_halted,
        SessionEvent.PAGE_ERROR: _on_page_error,
        SessionEvent.PERF_DELTA: _on_perf_delta,
        SessionEvent.SESSION_FINISHED: _on_session_finished,
    }
