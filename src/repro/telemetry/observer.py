"""Tracing the session pipeline: a SessionObserver emitting spans.

The engine narrates every replay on its structured event stream
(:mod:`repro.session.events`); :class:`TracingObserver` turns that
narration into nested duration spans on the control process's *session
pipeline* track:

- a ``session`` span covering the whole run,
- a ``command`` span per command, containing
- a ``locate`` span (command-started → located/relaxed; when location
  fails into the coordinate fallback or the command is a frame switch,
  the locate span absorbs the act) and an ``act`` span (located →
  acted),

plus instants for navigation, failures, halts, and page errors, and
per-cache counter samples from the session's perf delta. The observer
is attached to every run by :class:`~repro.session.engine.SessionRun`
and does nothing (one guard check per event) while tracing is off.
"""

from repro.session.events import SessionObserver
from repro.telemetry.tracks import COUNTERS_TRACK, SESSION_TRACK


class TracingObserver(SessionObserver):
    """Emits session-pipeline spans for one run's event stream."""

    CAT = "session"

    def __init__(self, track=SESSION_TRACK):
        self.track = track
        #: Names of currently open B spans, innermost last.
        self._open = []

    def on_event(self, event):
        from repro import telemetry

        tracer = telemetry.current()
        if tracer is None:
            return
        super().on_event(event)

    # -- span plumbing ------------------------------------------------------

    def _tracer(self):
        from repro import telemetry

        return telemetry.current()

    def _begin(self, tracer, name, args=None):
        tracer.begin(name, track=self.track, cat=self.CAT, args=args)
        self._open.append(name)

    def _end(self, tracer, args=None):
        name = self._open.pop()
        tracer.end(name, track=self.track, cat=self.CAT, args=args)

    def _close_phases(self, tracer, args=None):
        """Close any open locate/act span (back down to the command)."""
        while self._open and self._open[-1] in ("locate", "act"):
            self._end(tracer, args=args)
            args = None

    # -- event hooks --------------------------------------------------------

    def on_session_started(self, event):
        tracer = self._tracer()
        trace = event.data["trace"]
        self._open = []
        self._begin(tracer, "session", args={
            "label": trace.label or "",
            "start_url": trace.start_url,
            "commands": len(trace),
        })

    def on_navigated(self, event):
        self._tracer().instant("navigated", track=self.track, cat=self.CAT,
                               args={"url": event.data["url"]})

    def on_command_started(self, event):
        tracer = self._tracer()
        self._begin(tracer, "command",
                    args={"line": event.command.to_line(),
                          "action": event.command.action,
                          "due_vt_ms": event.data.get("due")})
        self._begin(tracer, "locate")

    def on_located(self, event):
        self._phase_to_act(event)

    def on_relaxed(self, event):
        self._phase_to_act(event)

    def _phase_to_act(self, event):
        tracer = self._tracer()
        if self._open and self._open[-1] == "locate":
            self._end(tracer, args={"detail": event.detail or "exact"})
        self._begin(tracer, "act")

    def on_acted(self, event):
        self._close_phases(self._tracer(),
                           args={"detail": event.detail} if event.detail
                           else None)

    def on_failed(self, event):
        tracer = self._tracer()
        self._close_phases(tracer)
        tracer.instant("command.failed", track=self.track, cat=self.CAT,
                       args={"error": str(event.error)})

    def on_command_finished(self, event):
        tracer = self._tracer()
        self._close_phases(tracer)
        if self._open and self._open[-1] == "command":
            self._end(tracer, args={"status": event.result.status})

    def on_halted(self, event):
        self._tracer().instant("session.halted", track=self.track,
                               cat=self.CAT, args={"reason": event.detail})

    def on_page_error(self, event):
        self._tracer().instant("page.error", track=self.track, cat=self.CAT,
                               args={"error": str(event.data["error"])})

    def on_perf_delta(self, event):
        tracer = self._tracer()
        for name, counts in sorted(event.data["counters"].items()):
            tracer.counter("session.cache.%s" % name,
                           {"hits": counts["hits"],
                            "misses": counts["misses"]},
                           track=COUNTERS_TRACK, cat="perf")

    def on_session_finished(self, event):
        tracer = self._tracer()
        while self._open:
            self._end(tracer)
