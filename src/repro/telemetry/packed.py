"""Packed binary event storage: the tracing hot path's data plane.

Chrome's trace infrastructure stays cheap enough to leave on in
production by never building an event *object* on the hot path: an
emission is a handful of integer writes into a preallocated buffer,
and the human-readable Chrome trace-event dicts are reconstructed only
at export time. This module is that treatment for ``repro.telemetry``:

- :class:`PackedRingBuffer` — fixed-width 48-byte records packed into
  one preallocated ``bytearray`` (overwrite-oldest, ``total``/
  ``dropped`` counters), with a parallel slot array holding each
  record's ``args`` payload by reference;
- :class:`StringTable` — event names, categories, and non-integer
  async ids are interned to small ints at emit time and resolved back
  to strings only at decode;
- :class:`Sampler` — a deterministic per-category LCG keep/drop
  stream, seeded from ``crc32(category) ^ seed`` so the same seed
  keeps the same event set in every process (Python's ``hash()`` is
  randomized per process and must not be used here);
- a portable wire encoding (:meth:`PackedRingBuffer.wire_slice` /
  :func:`decode_wire_slice`) so pool workers ship raw record bytes
  plus their intern tables across the process boundary instead of one
  dict per event.

Record layout (``struct`` format ``=BBHIIIqqdq``, 48 bytes)::

    ph      u8   phase code (index into PHASE_CHARS)
    flags   u8   which optional fields are present (F_* bits)
    cat     u16  interned category id
    name    u32  interned name id
    pid     u32  track process id
    tid     u32  track thread id
    ts      i64  timestamp, integer nanoseconds
    dur     i64  duration, integer nanoseconds (F_DUR)
    vt      f64  virtual-clock milliseconds, raw (F_VT)
    id      i64  async pairing id (F_ID; interned string if F_STR_ID)

``ts``/``dur`` quantize the tracer's float microseconds to integer
nanoseconds — exactly the precision the exporter keeps anyway (it
rounds to 3 decimal places of a microsecond). ``args`` payloads are
stashed *by reference* (ownership passes to the buffer; emit never
copies) as either a dict — whose callable values are called only at
decode, so deferred encodings like a command's ``to_line`` bound
method cost nothing unless the event is actually exported — or an
encoder tuple ``(encoder, *payload)`` expanded to the full dict by
:func:`materialize_args` at decode.
"""

from struct import Struct

from zlib import crc32

from repro.telemetry.events import TraceEvent

#: Phase codes <-> Chrome ``ph`` characters, by index.
PHASE_CHARS = "XBEbeiCM"
PH_COMPLETE = 0
PH_BEGIN = 1
PH_END = 2
PH_ASYNC_BEGIN = 3
PH_ASYNC_END = 4
PH_INSTANT = 5
PH_COUNTER = 6
PH_METADATA = 7

#: Presence bits for the record's optional fields.
F_DUR = 0x01
F_CAT = 0x02
F_ARGS = 0x04
F_ID = 0x08
F_VT = 0x10
F_STR_ID = 0x20

RECORD = Struct("=BBHIIIqqdq")
RECORD_SIZE = RECORD.size

#: Records allocated up front. The backing store grows in-place (by
#: doubling, capped at ``capacity``) as records are appended, so a
#: tracer for a short run never pays for — or page-faults through — a
#: multi-megabyte allocation it won't fill. A 65536-record default
#: buffer is ~3 MB; allocating it eagerly cost more than an entire
#: short replay's tracing did.
SEGMENT_RECORDS = 1024

#: Version tag of the pool wire encoding (see :meth:`wire_slice`).
WIRE_TAG = "WTP1"


class StringTable:
    """Interns strings to dense small-int ids; decodes by index."""

    __slots__ = ("strings", "_ids")

    def __init__(self, strings=None):
        self.strings = list(strings) if strings is not None else []
        self._ids = {s: i for i, s in enumerate(self.strings)}

    def intern(self, string):
        table = self._ids
        index = table.get(string)
        if index is None:
            index = len(self.strings)
            table[string] = index
            self.strings.append(string)
        return index

    def __len__(self):
        return len(self.strings)

    def __getitem__(self, index):
        return self.strings[index]

    def __repr__(self):
        return "StringTable(%d)" % len(self.strings)


class Sampler:
    """Deterministic keep/drop stream for one sampled category.

    A 32-bit LCG (Numerical Recipes constants) advanced once per
    candidate event; the event is kept when the state falls below
    ``rate`` of the 32-bit range. Seeding mixes the category name via
    ``crc32`` with the caller's seed, so two processes replaying the
    same workload with the same seed keep the *same* events — the
    property the cross-process determinism test pins down.
    """

    __slots__ = ("rate", "_state", "_threshold")

    def __init__(self, category, rate, seed=0):
        self.rate = float(rate)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("sampling rate must be within [0, 1]")
        self._state = (crc32(category.encode("utf-8"))
                       ^ ((seed * 0x9E3779B1) & 0xFFFFFFFF)) or 1
        self._threshold = int(self.rate * 4294967296.0)

    def keep(self):
        state = (self._state * 1664525 + 1013904223) & 0xFFFFFFFF
        self._state = state
        return state < self._threshold


def materialize_args(args, vt):
    """The export-time ``args`` dict for one record (always a copy).

    ``args`` is either a dict (callable values are invoked now —
    deferred encoding) or an encoder tuple ``(encoder, *payload)``
    whose encoder builds the whole dict at once — the cheapest shape a
    hot emitter can stash, one tuple instead of a dict per event. The
    packed virtual timestamp is merged in. The caller's payload is
    never mutated — the returned dict is fresh.
    """
    if args is not None:
        if type(args) is tuple:
            out = args[0](*args[1:])
        else:
            out = {key: (value() if callable(value) else value)
                   for key, value in args.items()}
    elif vt is not None:
        out = {}
    else:
        return None
    if vt is not None:
        out["vt_ms"] = vt
    return out


def _event_from_record(record, args, names, cats):
    """Rebuild one :class:`TraceEvent` from an unpacked record tuple."""
    ph, flags, cat_id, name_id, pid, tid, ts, dur, vt, event_id = record
    return TraceEvent(
        names[name_id], PHASE_CHARS[ph], ts / 1000.0, pid, tid,
        dur=(dur / 1000.0) if flags & F_DUR else None,
        cat=cats[cat_id] if flags & F_CAT else None,
        args=materialize_args(args if flags & F_ARGS else None,
                              vt if flags & F_VT else None),
        id=(names[event_id] if flags & F_STR_ID
            else event_id if flags & F_ID else None))


class PackedRingBuffer:
    """Bounded packed event storage; drops the oldest when full.

    API-compatible with the legacy object ring
    (:class:`~repro.telemetry.events.RingBuffer`): ``total`` counts
    every append ever made, ``dropped`` is what overwrite-oldest
    evicted, iteration and :meth:`since` yield decoded
    :class:`~repro.telemetry.events.TraceEvent` objects.
    """

    __slots__ = ("capacity", "names", "cats", "total", "_data", "_args",
                 "_alloc", "_pack", "_intern")

    def __init__(self, capacity, names=None, cats=None):
        if capacity < 1:
            raise ValueError("ring buffer needs capacity >= 1")
        self.capacity = capacity
        self.names = names if names is not None else StringTable()
        self.cats = cats if cats is not None else StringTable()
        self.total = 0
        self._alloc = capacity if capacity < SEGMENT_RECORDS else (
            SEGMENT_RECORDS)
        self._data = bytearray(self._alloc * RECORD_SIZE)
        self._args = [None] * self._alloc
        self._pack = RECORD.pack_into
        self._intern = self.names.intern

    # -- hot path ------------------------------------------------------------

    def append(self, ph, name, cat_id, pid, tid, ts_us, dur_us, vt_ms,
               args, event_id):
        """Pack one record; a few int ops and one ``pack_into``.

        ``cat_id`` is a pre-interned id (or None), ``ts_us``/``dur_us``
        are float microseconds, ``vt_ms`` the raw virtual-clock reading.
        ``args`` ownership transfers to the buffer — callers must not
        mutate the dict after emitting.
        """
        flags = 0
        if cat_id is None:
            cat_id = 0
        else:
            flags = F_CAT
        if dur_us is None:
            dur = 0
        else:
            dur = int(dur_us * 1000.0 + 0.5)
            flags |= F_DUR
        if vt_ms is None:
            vt_ms = 0.0
        else:
            flags |= F_VT
        if event_id is None:
            eid = 0
        elif type(event_id) is int:
            eid = event_id
            flags |= F_ID
        else:
            eid = self._intern(str(event_id))
            flags |= F_ID | F_STR_ID
        if args is not None:
            flags |= F_ARGS
        total = self.total
        slot = total % self.capacity
        if slot >= self._alloc:
            self._grow(slot + 1)
        self._args[slot] = args
        self._pack(self._data, slot * RECORD_SIZE, ph, flags, cat_id,
                   self._intern(name), pid, tid,
                   int(ts_us * 1000.0 + 0.5), dur, vt_ms, eid)
        self.total = total + 1

    def append_raw(self, ph, flags, cat_id, name_id, pid, tid, ts_ns,
                   dur_ns, vt_ms, args):
        """Pre-compiled append: the emitter already did the thinking.

        The caller supplies a complete ``flags`` byte, interned ids,
        and integer-nanosecond timestamps, so this is just the slot
        bookkeeping and one ``pack_into`` — the shape the observer's
        per-command fast path compiles down to. No ``F_ID`` payloads
        (the id field packs as 0).
        """
        total = self.total
        slot = total % self.capacity
        if slot >= self._alloc:
            self._grow(slot + 1)
        self._args[slot] = args
        self._pack(self._data, slot * RECORD_SIZE, ph, flags, cat_id,
                   name_id, pid, tid, ts_ns, dur_ns, vt_ms, 0)
        self.total = total + 1

    def _grow(self, needed):
        """Extend the backing store (record slots double up to capacity).

        The ring only wraps once ``total`` reaches ``capacity``, and the
        store is always grown before a slot past ``_alloc`` is written,
        so by the time wrapping starts the store is fully allocated.
        """
        alloc = self._alloc * 2
        if alloc < needed:
            alloc = needed
        if alloc > self.capacity:
            alloc = self.capacity
        self._data.extend(bytes((alloc - self._alloc) * RECORD_SIZE))
        self._args.extend([None] * (alloc - self._alloc))
        self._alloc = alloc

    # -- counters ------------------------------------------------------------

    @property
    def dropped(self):
        """How many events were overwritten to keep the buffer bounded."""
        extra = self.total - self.capacity
        return extra if extra > 0 else 0

    def __len__(self):
        return self.total if self.total < self.capacity else self.capacity

    # -- decode (export-time only) -------------------------------------------

    def _decode_range(self, start, stop):
        data = self._data
        arg_slots = self._args
        names = self.names.strings
        cats = self.cats.strings
        unpack = RECORD.unpack_from
        events = []
        for index in range(start, stop):
            slot = index % self.capacity
            events.append(_event_from_record(
                unpack(data, slot * RECORD_SIZE), arg_slots[slot],
                names, cats))
        return events

    def since(self, mark):
        """Decoded events appended after ``mark`` (a prior ``total``).

        Records already overwritten are silently absent from the slice.
        """
        start = self.total - len(self)
        if mark > start:
            start = mark
        return self._decode_range(start, self.total)

    def __iter__(self):
        return iter(self._decode_range(self.total - len(self), self.total))

    # -- the pool wire -------------------------------------------------------

    def wire_slice(self, mark):
        """A picklable slice of raw records for the worker-pool wire.

        Returns ``(WIRE_TAG, record_bytes, args_list, names, cats)``:
        the packed bytes of every live record after ``mark``, a
        parallel list of materialized args dicts (callables resolved
        worker-side, where their objects are still alive), and
        snapshots of the intern tables. Decode with
        :func:`decode_wire_slice`; :class:`TraceMerger` remaps pids on
        the decoded events exactly as it does for dict slices.
        """
        start = self.total - len(self)
        if mark > start:
            start = mark
        count = self.total - start
        data = self._data
        if count <= 0:
            chunk = b""
        else:
            first = (start % self.capacity) * RECORD_SIZE
            end = first + count * RECORD_SIZE
            limit = self.capacity * RECORD_SIZE
            if end <= limit:
                chunk = bytes(data[first:end])
            else:
                chunk = bytes(data[first:limit]) + bytes(data[:end - limit])
        args_out = []
        for index in range(start, self.total):
            args_out.append(materialize_args(
                self._args[index % self.capacity], None))
        return (WIRE_TAG, chunk, args_out,
                list(self.names.strings), list(self.cats.strings))

    def __repr__(self):
        return "PackedRingBuffer(%d/%d, %d dropped)" % (
            len(self), self.capacity, self.dropped)


def is_wire_slice(events):
    """True when ``events`` is a packed wire slice, not a dict list."""
    return (type(events) is tuple and len(events) == 5
            and events[0] == WIRE_TAG)


def decode_wire_slice(slice_tuple):
    """Decode a :meth:`PackedRingBuffer.wire_slice` back into events."""
    tag, data, args_list, names, cats = slice_tuple
    if tag != WIRE_TAG:
        raise ValueError("not a %s wire slice: %r" % (WIRE_TAG, tag))
    if len(data) != len(args_list) * RECORD_SIZE:
        raise ValueError("wire slice is torn: %d bytes for %d args slots"
                         % (len(data), len(args_list)))
    return [_event_from_record(record, args_list[index], names, cats)
            for index, record in enumerate(RECORD.iter_unpack(data))]
