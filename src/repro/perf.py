"""Replay fast-path instrumentation and the global cache toggle.

The fast path (compiled-XPath cache, generation-invalidated DOM
indexes, memoized relaxation, dirty-tracked layout) is always on in
production. For benchmarking — and for proving cached and uncached
replays behave identically — it can be switched off as a whole with
:func:`set_fast_path` or the :func:`fast_path` context manager, which
reverts every call site to the original eager code path.

Every cache records hits and misses here under a dotted name
(``xpath.compile``, ``dom.index``, ``relax.candidates``,
``relax.resolve``, ``layout``). The replayer snapshots the counters
around a replay and attaches the delta to its report, so cache
effectiveness is visible per trace.
"""

from contextlib import contextmanager

_enabled = True

#: Callbacks that drop module-level cache contents (registered by the
#: parser and the relaxation engine); run when the fast path is toggled
#: so measurements never see a half-warm cache.
_cache_clearers = []


class PerfStats:
    """Hit/miss counters keyed by cache name."""

    def __init__(self):
        self._hits = {}
        self._misses = {}

    def record(self, name, hit):
        table = self._hits if hit else self._misses
        table[name] = table.get(name, 0) + 1

    def counter(self, name):
        """(hits, misses) for one cache (zeros if never touched)."""
        return (self._hits.get(name, 0), self._misses.get(name, 0))

    def snapshot(self):
        """Plain {name: (hits, misses)} copy of the current counters."""
        names = set(self._hits) | set(self._misses)
        return {name: self.counter(name) for name in names}

    def reset(self):
        self._hits.clear()
        self._misses.clear()


#: The process-wide stats instance every cache reports into.
stats = PerfStats()


class Scope:
    """Per-session counter attribution for interleaved execution.

    The global snapshot/:func:`delta` protocol assumes sessions run
    back to back; when the sharded batch runner interleaves N sessions
    in one process, their windows overlap and a snapshot diff would
    charge every session with everyone's activity. A ``Scope`` is a
    private hit/miss ledger: while it is active (:func:`set_scope`),
    every :func:`record` also lands in the scope, so the runner can
    switch scopes at session granularity and each session's counters
    come out exactly as a serial run would have attributed them.
    """

    __slots__ = ("_hits", "_misses")

    def __init__(self):
        self._hits = {}
        self._misses = {}

    def record(self, name, hit):
        table = self._hits if hit else self._misses
        table[name] = table.get(name, 0) + 1

    def counters(self):
        """Scope activity in :func:`delta` format ({name: {"hits",
        "misses", "hit_rate"}}, zero-activity caches dropped)."""
        result = {}
        for name in set(self._hits) | set(self._misses):
            hits = self._hits.get(name, 0)
            misses = self._misses.get(name, 0)
            total = hits + misses
            if total == 0:
                continue
            result[name] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total,
            }
        return result


#: The active attribution scope, or None (the default: no extra work).
_scope = None


def set_scope(scope):
    """Activate ``scope`` (or None); returns the previous scope.

    Callers restore the previous scope when their slice of execution
    ends — the sharded runner brackets every session step this way.
    """
    global _scope
    previous = _scope
    _scope = scope
    return previous

#: Optional hook called as ``hook(name, hits, misses)`` after every
#: record; :mod:`repro.telemetry` installs one to mirror counter
#: activity into trace counter events. None (the default) costs
#: :func:`record` a single guard check.
_counter_observer = None


def set_counter_observer(hook):
    """Install (or clear, with None) the per-record counter hook."""
    global _counter_observer
    _counter_observer = hook


def record(name, hit):
    """Count one hit (``hit=True``) or miss on the named cache."""
    stats.record(name, hit)
    if _scope is not None:
        _scope.record(name, hit)
    if _counter_observer is not None:
        hits, misses = stats.counter(name)
        _counter_observer(name, hits, misses)


def snapshot():
    """Current process-wide counters as {name: (hits, misses)}."""
    return stats.snapshot()


def reset():
    """Zero all counters (cache contents are untouched)."""
    stats.reset()


def delta(before):
    """Counters accumulated since ``before`` (a :func:`snapshot`).

    Returns {name: {"hits": h, "misses": m, "hit_rate": r}} with
    zero-activity caches dropped — a cache appears only when it saw at
    least one hit or miss since ``before``, so ``hit_rate`` is always a
    float in [0, 1], never None.
    """
    result = {}
    for name, (hits, misses) in snapshot().items():
        base_hits, base_misses = before.get(name, (0, 0))
        hits -= base_hits
        misses -= base_misses
        total = hits + misses
        if total == 0:
            continue
        result[name] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total,
        }
    return result


def register_cache_clearer(clear):
    """Register a callback that empties one module-level cache."""
    _cache_clearers.append(clear)
    return clear


def clear_caches():
    """Empty every registered module-level cache."""
    for clear in _cache_clearers:
        clear()


def fast_path_enabled():
    """True when the caches and lazy paths are active (the default)."""
    return _enabled


def set_fast_path(enabled):
    """Globally enable/disable the fast path; clears caches on change."""
    global _enabled
    enabled = bool(enabled)
    if enabled != _enabled:
        _enabled = enabled
        clear_caches()


@contextmanager
def fast_path(enabled):
    """Temporarily force the fast path on or off (restores on exit)."""
    previous = _enabled
    set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)
