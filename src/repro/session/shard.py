"""In-process sharded batch replay: N interleaved sessions, zero pickling.

A worker pool buys parallelism with real processes — spawn cost,
per-worker browser factories, result serialization. On a single core
that machinery is pure overhead, and the engine does not actually need
it to multiplex sessions: every session runs on its *own* browser with
its own virtual clock and discrete-event loop, so two sessions never
contend for real time. :class:`ShardedRunner` exploits that — it keeps
up to ``shards`` sessions open at once and round-robins one command at
a time across them, cooperatively, in one process. No pickling, no
queues, no spawn; the cost over serial execution is a scope switch per
command. Throughput on one core therefore tracks serial replay (the
"never worse than serial" floor the batch bench asserts), while
latency-to-first-result and fairness across traces behave like a pool.

Per-session accounting still works under interleaving:

- **perf counters** — each session carries a
  :class:`repro.perf.Scope`; the runner activates it around every call
  into the session, so counter attribution matches what a serial run
  would report even though the global counters interleave;
- **telemetry** — the tracer's virtual clock is repointed to the
  stepping session's browser before every step, and each step's slice
  of the ring buffer is banked per session, so per-session trace files
  come out coherent and the merged timeline keeps every browser on its
  own track.

The runner is driven through :class:`~repro.session.batch.BatchRunner`
(``BatchRunner(shards=N)`` / ``python -m repro batch --shards N``);
report and counter merging are identical to the serial path by
construction — the equivalence tests pin serial, sharded, and pooled
runs of one batch to equal results.
"""

import time
from collections import deque

from repro import perf
from repro.session.batch import BatchReport, TraceRun, _unique_stem
from repro.session.engine import SessionEngine
from repro.session.observers import PerfCountersObserver
from repro.session.policies import FailurePolicy
from repro.session.supervisor import throttle_seconds


class _Shard:
    """One in-flight session slot."""

    __slots__ = ("order", "label", "trace", "browser", "run", "commands",
                 "scope", "events", "tape_session")

    def __init__(self, order, label, trace):
        #: Submission index: the report lists runs in input order even
        #: though interleaved sessions finish out of order.
        self.order = order
        self.label = label
        self.trace = trace
        self.browser = None
        self.run = None
        self.commands = iter(trace)
        #: Private perf ledger, active only while this session executes.
        self.scope = perf.Scope()
        #: This session's slice of the telemetry buffer (tracing only).
        self.events = []
        #: The attached tape (record/playback runs), closed on finalize.
        self.tape_session = None


class ShardedRunner:
    """Interleaves up to ``shards`` sessions cooperatively in-process."""

    def __init__(self, browser_factory, shards, driver_config=None,
                 timing=None, locator=None, failure=None, retry=None,
                 observers=None, tape=None):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.browser_factory = browser_factory
        self.shards = int(shards)
        self.driver_config = driver_config
        self.timing = timing
        self.locator = locator
        self.failure = failure
        self.retry = retry
        self.observers = list(observers or [])
        #: Optional TapeConfig; every admitted session gets its own
        #: attached tape (networks are per-browser, so interleaved
        #: sessions record/play back independently).
        self.tape = tape

    # -- the cooperative loop ------------------------------------------------

    def run(self, traces, labels, tracer=None, trace_dir=None,
            write_trace=None, hooks=None):
        """Replay the batch with up to ``shards`` interleaved sessions.

        ``tracer``/``trace_dir``/``write_trace`` mirror the serial batch
        path: with tracing on, each finished session's banked events are
        written to ``<label>.trace.json`` via ``write_trace(path,
        events)``. ``hooks`` (a batch ``_RunHooks``) journals each
        admission and finish and gates admission on a graceful drain —
        in-flight sessions still run to completion.
        """
        batch = BatchReport()
        perf_totals = PerfCountersObserver()
        throttle = throttle_seconds()
        pending = deque((order, label, trace) for order, (label, trace)
                        in enumerate(zip(labels, traces)))
        active = deque()
        finished = {}
        used_stems = set()
        halt_batch = False
        try:
            while pending or active:
                while (len(active) < self.shards and pending
                       and not halt_batch):
                    if hooks is not None and hooks.drain_requested():
                        batch.drained = True
                        halt_batch = True
                        break
                    order, label, trace = pending.popleft()
                    if hooks is not None:
                        hooks.on_start(order, label)
                    if throttle:
                        time.sleep(throttle)
                    active.append(self._admit(order, label, trace,
                                              perf_totals=perf_totals,
                                              tracer=tracer))
                if not active:
                    # Halt with sessions left in the queue: admission is
                    # closed and the in-flight ones have drained.
                    break
                slot = active.popleft()
                if self._step(slot, tracer):
                    report = self._finalize(slot, tracer, trace_dir,
                                            used_stems, write_trace)
                    finished[slot.order] = TraceRun(slot.label, slot.trace,
                                                    report)
                    if hooks is not None:
                        hooks.on_report(slot.order, slot.label, report)
                    if report.halted and self._halts_batch():
                        # Halt stops *admission*; sessions already in
                        # flight drain to completion (matching the
                        # pool, where queued traces cannot be recalled
                        # from workers mid-chunk).
                        halt_batch = True
                else:
                    active.append(slot)
        finally:
            if tracer is not None:
                tracer.clock = None
        for order in sorted(finished):
            batch.add(finished[order])
        batch.perf_counters = perf_totals.summary()
        return batch

    def _halts_batch(self):
        return (self.failure is not None
                and self.failure.on_failure == FailurePolicy.HALT)

    # -- per-session transitions ---------------------------------------------

    def _admit(self, order, label, trace, perf_totals, tracer):
        """Open a new session slot (fresh browser, fresh engine)."""
        slot = _Shard(order, label, trace)
        slot.browser = self.browser_factory()
        if self.tape is not None:
            slot.tape_session = self.tape.attach(slot.browser.network,
                                                 slot.label)
        engine = SessionEngine(
            slot.browser,
            driver_config=self.driver_config,
            timing=self.timing,
            locator=self.locator,
            failure=self.failure,
            retry=self.retry,
            observers=self.observers + [perf_totals],
        )
        mark = self._enter(slot, tracer)
        try:
            slot.run = engine.start(trace, perf_scope=slot.scope)
        finally:
            self._leave(slot, tracer, mark)
        return slot

    def _step(self, slot, tracer):
        """Advance the session by one command; True when it is done."""
        run = slot.run
        if run.stopped:
            return True
        try:
            command = next(slot.commands)
        except StopIteration:
            return True
        mark = self._enter(slot, tracer)
        try:
            run.step(command)
        finally:
            self._leave(slot, tracer, mark)
        return run.stopped

    def _finalize(self, slot, tracer, trace_dir, used_stems, write_trace):
        """Close the session out and write its trace slice if tracing."""
        mark = self._enter(slot, tracer)
        try:
            report = slot.run.finish()
        finally:
            self._leave(slot, tracer, mark)
            if slot.tape_session is not None:
                slot.tape_session.finish()
        if tracer is not None and trace_dir is not None \
                and write_trace is not None:
            stem = _unique_stem(slot.label, used_stems)
            write_trace(stem, slot.events)
        return report

    # -- execution bracketing ------------------------------------------------

    def _enter(self, slot, tracer):
        """Activate the slot's perf scope and clock; returns restore info."""
        previous = perf.set_scope(slot.scope)
        mark = None
        if tracer is not None:
            tracer.clock = slot.browser.clock
            mark = tracer.mark()
        return (previous, mark)

    def _leave(self, slot, tracer, state):
        previous, mark = state
        perf.set_scope(previous)
        if tracer is not None:
            slot.events.extend(tracer.events_since(mark))
            tracer.clock = None
