"""WJ1: the append-only, fsync'd batch run journal.

A batch run is only as durable as its book-keeping. Before this module,
the farm's unit of durability was the whole process: a parent crash, an
orchestrator's SIGTERM, or one poisonous trace threw away every result
the run had already paid for. The run journal makes the *trace* the
unit of durability instead: every batch writes an append-only journal
of per-trace ``start``/``finish`` records (each finish carrying the
full wire-encoded :class:`~repro.session.report.ReplayReport`), fsync'd
record by record, so a resumed run (``python -m repro batch --journal
PATH --resume``) replays completed entries *from the journal* and
re-runs only the remainder.

Format (version tag ``WJ1`` — same idiom as WR2/WT1):

- **framing** — every record is ``varint(length) + body + crc32``; the
  length covers body+crc, so the reader can skip records it cannot
  parse and — crucially — detect a *torn tail*: a record cut short by
  a crash mid-append fails its length or CRC check and is truncated,
  never fatal. Anything before the torn frame stays valid.
- **LEB128 varints** for every integer, **string interning** for every
  repeated string: labels and error classes are written once as
  ``INTERN`` records and referenced by 1-based index afterwards
  (0 = None). Intern records always precede the record that first
  references them, so truncation can strand an intern record (harmless)
  but never a dangling reference.
- **reports ride as WR2 blobs** — a finish record embeds the worker's
  wire-encoded report verbatim; resume decodes it with
  :func:`repro.session.wire.decode_report` instead of re-replaying.

The first record is always ``CONFIG``: a JSON description of the batch
(mode, per-trace labels and SHA-256 trace digests). Resume verifies the
submitted batch against it — same labels, same trace content — before
trusting any completed entry, so a journal can never be replayed
against a different workload.

Exactly-once accounting: a trace is *complete* iff the journal holds a
finish record for it (any status — replayed, failed, or quarantined).
A crash between a trace's completion and its finish record's fsync
re-runs that trace on resume; a crash after the fsync replays it from
the journal. Either way the journal ends with exactly one finish per
trace, which is what the soak harness verifies.
"""

import hashlib
import json
import os
import zlib

from repro.session import wire
from repro.session.wire import _read_varint, _write_varint

#: Format tag; bump when the layout changes incompatibly.
MAGIC = b"WJ1"

#: Journal record types.
_CONFIG = 1
_INTERN = 2
_START = 3
_FINISH = 4
_EVENT = 5

#: Finish statuses, packed as one byte.
REPLAYED = "replayed"
FAILED = "failed"
QUARANTINED = "quarantined"
_STATUSES = (REPLAYED, FAILED, QUARANTINED)
_STATUS_CODE = {status: code for code, status in enumerate(_STATUSES)}

_CRC = zlib.crc32


class JournalError(ValueError):
    """A journal that cannot be used: bad magic, mid-file corruption,
    or a config that does not match the submitted batch."""


def trace_digest(trace_text):
    """Content digest binding a journal entry to its trace."""
    return hashlib.sha256(trace_text.encode("utf-8")).hexdigest()


def batch_config(labels, digests, mode, extra=None):
    """The CONFIG payload for a batch: one (label, digest) per trace."""
    config = {
        "version": 1,
        "mode": mode,
        "entries": [{"label": label, "digest": digest}
                    for label, digest in zip(labels, digests)],
    }
    if extra:
        config["extra"] = dict(extra)
    return config


def verify_config(config, labels, digests):
    """Refuse to resume a journal against a different workload.

    The batch *mode* (serial/sharded/pooled) may legitimately differ —
    a run crashed under a pool can be finished serially — but the
    traces themselves must be the same, in the same order.
    """
    entries = (config or {}).get("entries")
    if entries is None:
        raise JournalError("journal has no batch config record")
    if len(entries) != len(labels):
        raise JournalError(
            "journal describes %d trace(s) but the batch submits %d"
            % (len(entries), len(labels)))
    for index, (entry, label, digest) in enumerate(
            zip(entries, labels, digests)):
        if entry["label"] != label:
            raise JournalError(
                "journal entry %d is %r but the batch submits %r"
                % (index, entry["label"], label))
        if entry["digest"] != digest:
            raise JournalError(
                "trace %r changed since the journal was written "
                "(digest mismatch)" % label)


# -- records ------------------------------------------------------------------


class StartRecord:
    """One trace admitted for execution (attempt counts from 1)."""

    __slots__ = ("index", "label", "attempt")

    def __init__(self, index, label, attempt=1):
        self.index = index
        self.label = label
        self.attempt = attempt

    def __repr__(self):
        return "StartRecord(%d, %r, attempt=%d)" % (
            self.index, self.label, self.attempt)


class FinishRecord:
    """One trace's final outcome, report included when one exists."""

    __slots__ = ("index", "label", "status", "attempts", "worker_id",
                 "report", "error", "error_class", "diagnosis")

    def __init__(self, index, label, status, attempts=1, worker_id=None,
                 report=None, error=None, error_class=None, diagnosis=None):
        self.index = index
        self.label = label
        self.status = status
        self.attempts = attempts
        self.worker_id = worker_id
        #: Decoded :meth:`ReplayReport.to_dict` payload, or None when
        #: the trace never produced a report (containment failure).
        self.report = report
        self.error = error
        self.error_class = error_class
        #: Quarantine diagnosis bundle (dict), or None.
        self.diagnosis = diagnosis

    def __repr__(self):
        return "FinishRecord(%d, %r, %s)" % (self.index, self.label,
                                             self.status)


class JournalEvent:
    """A run-level annotation (drain requested, pool degraded, ...)."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind, payload=None):
        self.kind = kind
        self.payload = payload or {}

    def __repr__(self):
        return "JournalEvent(%r)" % self.kind


class JournalSnapshot:
    """Everything a read pass recovered from a journal file."""

    def __init__(self):
        self.config = None
        self.starts = []
        self.finishes = []
        self.events = []
        self.strings = []
        #: Byte offset of the last intact record's end — the resume
        #: append point; everything past it was a torn tail.
        self.valid_length = 0
        self.truncated_bytes = 0

    @property
    def torn(self):
        """True when a torn tail was dropped during the read."""
        return self.truncated_bytes > 0

    def finish_by_index(self):
        """{index: FinishRecord}, first finish wins (duplicates are a
        bug surfaced separately by :meth:`duplicate_finishes`)."""
        table = {}
        for record in self.finishes:
            table.setdefault(record.index, record)
        return table

    def duplicate_finishes(self):
        """Indexes finished more than once — exactly-once violations."""
        seen = set()
        duplicates = []
        for record in self.finishes:
            if record.index in seen:
                duplicates.append(record.index)
            seen.add(record.index)
        return duplicates

    def completed_indexes(self):
        """Set of trace indexes holding a finish record."""
        return {record.index for record in self.finishes}

    def unfinished_indexes(self):
        """Indexes the config promises but no finish record covers."""
        total = len((self.config or {}).get("entries", ()))
        return [index for index in range(total)
                if index not in self.completed_indexes()]


# -- reading ------------------------------------------------------------------


class _BodyReader:
    __slots__ = ("body", "pos", "strings")

    def __init__(self, body, strings):
        self.body = body
        self.pos = 0
        self.strings = strings

    def varint(self):
        value, self.pos = _read_varint(self.body, self.pos)
        return value

    def byte(self):
        value = self.body[self.pos]
        self.pos += 1
        return value

    def take(self, count):
        if self.pos + count > len(self.body):
            raise JournalError("record body truncated")
        chunk = self.body[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def text(self):
        return self.take(self.varint()).decode("utf-8")

    def ref(self):
        """Interned string reference: 0 = None, else 1-based index."""
        ref = self.varint()
        if ref == 0:
            return None
        try:
            return self.strings[ref - 1]
        except IndexError:
            raise JournalError("string reference %d outside table" % ref)

    def maybe_json(self):
        length = self.varint()
        if length == 0:
            return None
        return json.loads(self.take(length).decode("utf-8"))


def read_journal(path):
    """Read ``path`` into a :class:`JournalSnapshot`.

    A torn tail — a final record cut short by a crash mid-append — is
    truncated, not fatal: the snapshot covers every intact record and
    notes the dropped byte count. Corruption *before* the tail (a CRC
    mismatch followed by further intact records) is indistinguishable
    from a tail tear at read time, so the read conservatively stops at
    the first bad frame either way.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[:len(MAGIC)] != MAGIC:
        raise JournalError("bad magic; %r is not a WJ1 journal" % path)
    snapshot = JournalSnapshot()
    pos = len(MAGIC)
    while pos < len(blob):
        frame_start = pos
        try:
            length, pos = _read_varint(blob, pos)
        except wire.WireError:
            break  # torn varint at the tail
        if length < 5 or pos + length > len(blob):
            break  # torn frame
        body = blob[pos:pos + length - 4]
        crc = int.from_bytes(blob[pos + length - 4:pos + length], "little")
        if _CRC(body) != crc:
            break  # torn mid-record write
        pos += length
        _decode_body(body, snapshot)
        snapshot.valid_length = pos
    if snapshot.valid_length == 0:
        snapshot.valid_length = len(MAGIC)
    snapshot.truncated_bytes = len(blob) - snapshot.valid_length
    return snapshot


def _decode_body(body, snapshot):
    reader = _BodyReader(body, snapshot.strings)
    kind = reader.byte()
    if kind == _CONFIG:
        snapshot.config = json.loads(reader.text())
    elif kind == _INTERN:
        snapshot.strings.append(reader.text())
    elif kind == _START:
        snapshot.starts.append(StartRecord(
            reader.varint(), reader.ref(), reader.varint()))
    elif kind == _FINISH:
        index = reader.varint()
        label = reader.ref()
        status_code = reader.byte()
        if status_code >= len(_STATUSES):
            raise JournalError("unknown finish status %d" % status_code)
        attempts = reader.varint()
        worker_field = reader.varint()
        flags = reader.byte()
        report = None
        if flags & 1:
            report = wire.decode_report(reader.take(reader.varint()))
        error_class = reader.ref() if flags & 2 else None
        error = reader.ref() if flags & 2 else None
        diagnosis = reader.maybe_json() if flags & 4 else None
        snapshot.finishes.append(FinishRecord(
            index, label, _STATUSES[status_code], attempts=attempts,
            worker_id=None if worker_field == 0 else worker_field - 1,
            report=report, error=error, error_class=error_class,
            diagnosis=diagnosis))
    elif kind == _EVENT:
        snapshot.events.append(JournalEvent(reader.ref(),
                                            reader.maybe_json()))
    else:
        raise JournalError("unknown journal record type %d" % kind)


# -- writing ------------------------------------------------------------------


class RunJournal:
    """Appends WJ1 records to a journal file, fsync per record.

    Use :meth:`create` for a fresh run and :meth:`resume` to continue
    one: resume reads the existing file, verifies its config against
    the submitted batch, truncates any torn tail, and appends from
    there — the intern table carries over so references stay valid.
    """

    def __init__(self, path, handle, strings, fsync=True):
        self.path = path
        self._handle = handle
        self._ids = {text: ref + 1 for ref, text in enumerate(strings)}
        self._fsync = fsync
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, path, config, fsync=True):
        """Start a fresh journal (truncating any existing file)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle = open(path, "wb")
        handle.write(MAGIC)
        journal = cls(path, handle, [], fsync=fsync)
        body = bytearray([_CONFIG])
        journal._text(body, json.dumps(config, sort_keys=True))
        journal._commit(journal._frame(body))
        return journal

    @classmethod
    def resume(cls, path, labels=None, digests=None, fsync=True):
        """Reopen ``path`` for appending; returns ``(journal, snapshot)``.

        The torn tail (if any) is physically truncated so the next
        append starts on a record boundary. With ``labels``/``digests``
        given, the journal's config is verified against them first.
        """
        snapshot = read_journal(path)
        if labels is not None:
            verify_config(snapshot.config, labels, digests)
        handle = open(path, "r+b")
        handle.truncate(snapshot.valid_length)
        handle.seek(snapshot.valid_length)
        return cls(path, handle, snapshot.strings, fsync=fsync), snapshot

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.close()
        return False

    # -- records ------------------------------------------------------------

    def start(self, index, label, attempt=1):
        """A trace was admitted for execution."""
        out = bytearray()
        body = bytearray([_START])
        _write_varint(body, index)
        _write_varint(body, self._ref(label, out))
        _write_varint(body, attempt)
        out += self._frame(body)
        self._commit(out)

    def finish(self, index, label, status, attempts=1, worker_id=None,
               report=None, error=None, error_class=None, diagnosis=None):
        """A trace reached its final outcome; fsync'd before returning.

        ``report`` is a :meth:`ReplayReport.to_dict` payload (embedded
        as a WR2 blob); ``diagnosis`` is the quarantine bundle.
        """
        if status not in _STATUS_CODE:
            raise JournalError("unknown finish status %r" % status)
        out = bytearray()
        body = bytearray([_FINISH])
        _write_varint(body, index)
        _write_varint(body, self._ref(label, out))
        body.append(_STATUS_CODE[status])
        _write_varint(body, attempts)
        _write_varint(body, 0 if worker_id is None else worker_id + 1)
        flags = ((1 if report is not None else 0)
                 | (2 if error is not None or error_class is not None else 0)
                 | (4 if diagnosis is not None else 0))
        body.append(flags)
        if flags & 1:
            blob = wire.encode_report(report)
            _write_varint(body, len(blob))
            body += blob
        if flags & 2:
            _write_varint(body, self._ref(error_class, out))
            _write_varint(body, self._ref(error, out))
        if flags & 4:
            self._json(body, diagnosis)
        out += self._frame(body)
        self._commit(out)

    def event(self, kind, **payload):
        """A run-level annotation (``drain``, ``degraded``, ...)."""
        out = bytearray()
        body = bytearray([_EVENT])
        _write_varint(body, self._ref(kind, out))
        self._json(body, payload or None)
        out += self._frame(body)
        self._commit(out)

    # -- encoding helpers ---------------------------------------------------

    def _ref(self, text, out):
        """Intern ``text``, appending an INTERN frame to ``out`` when new."""
        if text is None:
            return 0
        ref = self._ids.get(text)
        if ref is None:
            ref = len(self._ids) + 1
            self._ids[text] = ref
            body = bytearray([_INTERN])
            self._text(body, text)
            out += self._frame(body)
        return ref

    @staticmethod
    def _text(body, text):
        encoded = text.encode("utf-8")
        _write_varint(body, len(encoded))
        body += encoded

    @staticmethod
    def _json(body, payload):
        if payload is None:
            _write_varint(body, 0)
            return
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        _write_varint(body, len(encoded))
        body += encoded

    def _frame(self, body):
        frame = bytearray()
        _write_varint(frame, len(body) + 4)
        frame += body
        frame += _CRC(bytes(body)).to_bytes(4, "little")
        return frame

    def _commit(self, data):
        if self._closed:
            raise JournalError("journal %r is closed" % self.path)
        self._handle.write(data)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def __repr__(self):
        return "RunJournal(%r)" % self.path


def verify_exactly_once(path, expected_labels=None):
    """Audit a finished journal for exactly-once execution.

    Returns a JSON-able verdict: every configured trace must hold
    exactly one finish record — no losses, no duplicates. The soak
    harness calls this after every kill/resume scenario.
    """
    snapshot = read_journal(path)
    entries = (snapshot.config or {}).get("entries", [])
    labels = [entry["label"] for entry in entries]
    duplicates = snapshot.duplicate_finishes()
    missing = snapshot.unfinished_indexes()
    verdict = {
        "traces": len(entries),
        "finished": len(snapshot.completed_indexes()),
        "missing": [labels[i] for i in missing if i < len(labels)],
        "duplicates": sorted({labels[i] for i in duplicates
                              if i < len(labels)}),
        "torn_bytes": snapshot.truncated_bytes,
        "events": [event.kind for event in snapshot.events],
    }
    verdict["exactly_once"] = not verdict["missing"] \
        and not verdict["duplicates"] and bool(entries)
    if expected_labels is not None:
        verdict["labels_match"] = list(expected_labels) == labels
        verdict["exactly_once"] = (verdict["exactly_once"]
                                   and verdict["labels_match"])
    return verdict
