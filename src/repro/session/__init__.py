"""The policy-driven session layer.

One execution pipeline — schedule → locate → act → observe — shared by
every tool that drives a browser: WaRR replay, WebErr's error-injection
campaigns, AUsER's developer-side reproductions, and the fidelity
baselines. The :class:`SessionEngine` runs the pipeline; policy objects
configure each stage; observers consume the structured
:class:`SessionEvent` stream.
"""

from repro.session.events import EventStream, SessionEvent, SessionObserver
from repro.session.policies import (
    FailurePolicy,
    Location,
    LocatorPolicy,
    TimingPolicy,
)
from repro.session.report import CommandResult, RemoteError, ReplayReport
from repro.session.observers import (
    EventLogObserver,
    PerfCountersObserver,
    ReportBuilder,
)
from repro.session.engine import SessionEngine, SessionRun
from repro.session.batch import BatchReport, BatchRunner, TraceRun
from repro.session.pool import (
    PoolOutcome,
    WorkerPool,
    WorkerSpec,
    register_factory,
    resolve_factory,
)
from repro.session.shard import ShardedRunner
from repro.session.journal import (
    JournalError,
    RunJournal,
    read_journal,
    trace_digest,
    verify_exactly_once,
)
from repro.session.supervisor import (
    GracefulDrain,
    SupervisorPolicy,
    WorkerSupervisor,
)
from repro.session.wire import WireError, decode_report, encode_report

__all__ = [
    "EventStream",
    "SessionEvent",
    "SessionObserver",
    "TimingPolicy",
    "LocatorPolicy",
    "Location",
    "FailurePolicy",
    "CommandResult",
    "ReplayReport",
    "ReportBuilder",
    "PerfCountersObserver",
    "EventLogObserver",
    "SessionEngine",
    "SessionRun",
    "BatchRunner",
    "BatchReport",
    "TraceRun",
    "RemoteError",
    "PoolOutcome",
    "WorkerPool",
    "WorkerSpec",
    "register_factory",
    "resolve_factory",
    "ShardedRunner",
    "JournalError",
    "RunJournal",
    "read_journal",
    "trace_digest",
    "verify_exactly_once",
    "GracefulDrain",
    "SupervisorPolicy",
    "WorkerSupervisor",
    "WireError",
    "decode_report",
    "encode_report",
]
