"""Per-session result objects: command outcomes and the replay report.

These are the value objects the session engine's report observer
assembles from the event stream. They live here (not in the replayer)
so every engine consumer — WaRR replay, WebErr campaigns, AUsER
reproductions, batch runs — shares one report vocabulary.

Reports also round-trip through plain dicts (:meth:`ReplayReport.to_dict`
/ :meth:`ReplayReport.from_dict`): pool workers ship results to the
parent over a queue, so everything in a report must survive a process
boundary. Commands re-serialize through their wire format; live
exception objects (which may drag browser internals along) are carried
as :class:`RemoteError` stand-ins preserving the original type name and
message.
"""


from repro.util.errors import classify


class RemoteError(Exception):
    """A worker-side error carried across a process boundary.

    Printing matches the original (``str(error)`` is the original
    message); :attr:`type_name` preserves the worker-side class for
    classification, and :attr:`severity` the worker-side taxonomy bucket
    (so :func:`repro.util.errors.classify` keeps working on the parent
    side of the wire).
    """

    def __init__(self, message, type_name="Exception", severity=None):
        super().__init__(message)
        self.type_name = type_name
        if severity is not None:
            self.severity = severity

    def __repr__(self):
        return "RemoteError(%s: %s)" % (self.type_name, self)


def _error_to_dict(error):
    if error is None:
        return None
    type_name = getattr(error, "type_name", None) or type(error).__name__
    return {"type": type_name, "message": str(error),
            "severity": classify(error)}


def _error_from_dict(data):
    if data is None:
        return None
    return RemoteError(data["message"], type_name=data["type"],
                       severity=data.get("severity"))


class CommandResult:
    """Outcome of replaying one command."""

    OK = "ok"
    RELAXED = "relaxed"
    COORDINATE = "coordinate-fallback"
    FAILED = "failed"

    def __init__(self, command, status, detail="", error=None, retries=0):
        self.command = command
        self.status = status
        self.detail = detail
        self.error = error
        #: How many extra attempts self-healing spent on this command
        #: (0 = succeeded or failed on the first try).
        self.retries = retries

    @property
    def succeeded(self):
        return self.status in (self.OK, self.RELAXED, self.COORDINATE)

    @property
    def error_class(self):
        """Taxonomy bucket of the error (``transient``/``permanent``/
        ``fatal``), or None when the command succeeded without error."""
        if self.error is None:
            return None
        return classify(self.error)

    def to_dict(self):
        """A picklable/JSON-able dict (command on its wire format)."""
        return {
            "command": self.command.to_line(),
            "status": self.status,
            "detail": self.detail,
            "error": _error_to_dict(self.error),
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data, command=None):
        """Rebuild from :meth:`to_dict` output.

        ``command`` short-circuits re-parsing the serialized command
        line when the caller already holds the command object (the
        batch runner resuming reports from a journal owns the trace) —
        callers must only pass it when it serializes to the same line.
        """
        if command is None:
            from repro.core.commands import parse_command_line

            command = parse_command_line(data["command"])
        return cls(command, data["status"],
                   detail=data["detail"],
                   error=_error_from_dict(data["error"]),
                   retries=data.get("retries", 0))

    def __repr__(self):
        return "CommandResult(%s, %r)" % (self.status, self.command.to_line())


#: The network-fidelity slice every report carries: requests that
#: ultimately failed, requests that timed out, and playback requests
#: with no matching tape entry.
EMPTY_NET_FIDELITY = {"failed_fetches": 0, "timeouts": 0, "tape_misses": 0}


class ReplayReport:
    """Everything a developer (or WebErr's oracle) needs after replay."""

    def __init__(self, trace):
        self.trace = trace
        self.results = []
        self.halted = False
        self.halt_reason = ""
        #: The error behind the halt (a live exception or RemoteError),
        #: so batch consumers can classify aborts (e.g. a pool timeout
        #: vs. a worker crash); None when not halted or unknown.
        self.halt_error = None
        self.page_errors = []
        self.final_url = None
        #: Renderer-crash recoveries (tab reload + checkpoint resume).
        self.recoveries = 0
        #: Fast-path cache activity during this replay:
        #: {cache: {"hits": h, "misses": m, "hit_rate": r}}.
        self.perf_counters = {}
        #: Network-fidelity slice (ROADMAP item 5's scoreboard, first
        #: installment): what the wire did to this session.
        self.net_fidelity = dict(EMPTY_NET_FIDELITY)

    @property
    def replayed_count(self):
        return sum(1 for r in self.results if r.succeeded)

    @property
    def failed_count(self):
        return sum(1 for r in self.results if not r.succeeded)

    @property
    def retry_count(self):
        """Total extra attempts self-healing spent across all commands."""
        return sum(r.retries for r in self.results)

    @property
    def relaxed_count(self):
        return sum(1 for r in self.results
                   if r.status in (CommandResult.RELAXED, CommandResult.COORDINATE))

    @property
    def complete(self):
        """True if every command was replayed successfully."""
        return not self.halted and self.failed_count == 0

    def failures(self):
        return [r for r in self.results if not r.succeeded]

    def perf_summary(self):
        """One line per cache: ``name 98% (492 hits / 8 misses)``."""
        lines = []
        for name in sorted(self.perf_counters):
            counts = self.perf_counters[name]
            lines.append(
                "%s %.0f%% (%d hits / %d misses)"
                % (name, 100.0 * counts["hit_rate"], counts["hits"],
                   counts["misses"])
            )
        return lines

    def to_dict(self):
        """A picklable/JSON-able dict of the whole report."""
        return {
            "trace": self.trace.to_text(),
            "results": [result.to_dict() for result in self.results],
            "halted": self.halted,
            "halt_reason": self.halt_reason,
            "halt_error": _error_to_dict(self.halt_error),
            "page_errors": [_error_to_dict(error)
                            for error in self.page_errors],
            "final_url": self.final_url,
            "recoveries": self.recoveries,
            "perf_counters": self.perf_counters,
            "net_fidelity": dict(self.net_fidelity),
        }

    @classmethod
    def from_dict(cls, data, trace=None):
        """Rebuild a report from :meth:`to_dict` output.

        Pass ``trace`` to attach an already-loaded trace object (the
        batch runner keeps the parent's instance) instead of re-parsing
        the serialized copy.
        """
        from repro.core.trace import WarrTrace

        if trace is None:
            trace = WarrTrace.from_text(data["trace"])
        report = cls(trace)
        # Results line up with the trace's commands in execution order,
        # so each command object can usually be reused instead of
        # re-parsed; a line mismatch (e.g. a relaxation rewrote the
        # XPath before serialization) falls back to parsing.
        commands = list(trace)
        results = []
        for index, result in enumerate(data["results"]):
            command = None
            if index < len(commands) \
                    and commands[index].to_line() == result["command"]:
                command = commands[index]
            results.append(CommandResult.from_dict(result, command=command))
        report.results = results
        report.halted = data["halted"]
        report.halt_reason = data["halt_reason"]
        report.halt_error = _error_from_dict(data.get("halt_error"))
        report.page_errors = [_error_from_dict(error)
                              for error in data["page_errors"]]
        report.final_url = data["final_url"]
        report.recoveries = data.get("recoveries", 0)
        report.perf_counters = data["perf_counters"]
        fidelity = dict(EMPTY_NET_FIDELITY)
        fidelity.update(data.get("net_fidelity") or {})
        report.net_fidelity = fidelity
        return report

    def summary(self):
        return (
            "replayed %d/%d commands (%d relaxed, %d failed%s); "
            "%d page error(s)"
            % (self.replayed_count, len(self.trace), self.relaxed_count,
               self.failed_count, ", HALTED" if self.halted else "",
               len(self.page_errors))
        )

    def __repr__(self):
        return "ReplayReport(%s)" % self.summary()
