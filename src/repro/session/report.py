"""Per-session result objects: command outcomes and the replay report.

These are the value objects the session engine's report observer
assembles from the event stream. They live here (not in the replayer)
so every engine consumer — WaRR replay, WebErr campaigns, AUsER
reproductions, batch runs — shares one report vocabulary.
"""


class CommandResult:
    """Outcome of replaying one command."""

    OK = "ok"
    RELAXED = "relaxed"
    COORDINATE = "coordinate-fallback"
    FAILED = "failed"

    def __init__(self, command, status, detail="", error=None):
        self.command = command
        self.status = status
        self.detail = detail
        self.error = error

    @property
    def succeeded(self):
        return self.status in (self.OK, self.RELAXED, self.COORDINATE)

    def __repr__(self):
        return "CommandResult(%s, %r)" % (self.status, self.command.to_line())


class ReplayReport:
    """Everything a developer (or WebErr's oracle) needs after replay."""

    def __init__(self, trace):
        self.trace = trace
        self.results = []
        self.halted = False
        self.halt_reason = ""
        self.page_errors = []
        self.final_url = None
        #: Fast-path cache activity during this replay:
        #: {cache: {"hits": h, "misses": m, "hit_rate": r}}.
        self.perf_counters = {}

    @property
    def replayed_count(self):
        return sum(1 for r in self.results if r.succeeded)

    @property
    def failed_count(self):
        return sum(1 for r in self.results if not r.succeeded)

    @property
    def relaxed_count(self):
        return sum(1 for r in self.results
                   if r.status in (CommandResult.RELAXED, CommandResult.COORDINATE))

    @property
    def complete(self):
        """True if every command was replayed successfully."""
        return not self.halted and self.failed_count == 0

    def failures(self):
        return [r for r in self.results if not r.succeeded]

    def perf_summary(self):
        """One line per cache: ``name 98% (492 hits / 8 misses)``."""
        lines = []
        for name in sorted(self.perf_counters):
            counts = self.perf_counters[name]
            lines.append(
                "%s %.0f%% (%d hits / %d misses)"
                % (name, 100.0 * counts["hit_rate"], counts["hits"],
                   counts["misses"])
            )
        return lines

    def summary(self):
        return (
            "replayed %d/%d commands (%d relaxed, %d failed%s); "
            "%d page error(s)"
            % (self.replayed_count, len(self.trace), self.relaxed_count,
               self.failed_count, ", HALTED" if self.halted else "",
               len(self.page_errors))
        )

    def __repr__(self):
        return "ReplayReport(%s)" % self.summary()
