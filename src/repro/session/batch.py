"""Batch replay: many traces across isolated browser instances.

The first step toward sharded, multi-session scale: a
:class:`BatchRunner` replays a list of traces, each against a *fresh*
:class:`~repro.browser.window.BrowserWindow` built by the caller's
factory, so sessions cannot contaminate each other (cookies, page
errors, cache state). Per-trace reports are aggregated into a
:class:`BatchReport`; a shared
:class:`~repro.session.observers.PerfCountersObserver` accumulates
fast-path cache activity across the whole batch.

With ``trace_dir`` set, the whole batch runs under one telemetry
tracer: every session's browser gets its own pid track, each trace's
slice of the timeline is written to ``<label>.trace.json``, and the
full merged batch timeline lands in ``batch.trace.json``.
"""

import os

from repro import telemetry
from repro.session.engine import SessionEngine
from repro.session.observers import PerfCountersObserver


class TraceRun:
    """One trace's outcome within a batch."""

    def __init__(self, label, trace, report):
        self.label = label
        self.trace = trace
        self.report = report

    def __repr__(self):
        return "TraceRun(%r, %s)" % (self.label, self.report.summary())


class BatchReport:
    """Aggregate outcome of a batch replay."""

    def __init__(self):
        self.runs = []
        #: {cache: {"hits", "misses", "hit_rate"}} across the batch.
        self.perf_counters = {}

    def add(self, run):
        self.runs.append(run)

    @property
    def trace_count(self):
        return len(self.runs)

    @property
    def complete_count(self):
        return sum(1 for run in self.runs if run.report.complete)

    @property
    def replayed_count(self):
        return sum(run.report.replayed_count for run in self.runs)

    @property
    def failed_count(self):
        return sum(run.report.failed_count for run in self.runs)

    @property
    def command_count(self):
        return sum(len(run.trace) for run in self.runs)

    @property
    def page_error_count(self):
        return sum(len(run.report.page_errors) for run in self.runs)

    @property
    def complete(self):
        """True when every trace in the batch replayed completely."""
        return self.runs != [] and self.complete_count == self.trace_count

    def failures(self):
        return [run for run in self.runs if not run.report.complete]

    def summary(self):
        return (
            "batch: %d/%d trace(s) complete; replayed %d/%d commands "
            "(%d failed); %d page error(s)"
            % (self.complete_count, self.trace_count, self.replayed_count,
               self.command_count, self.failed_count, self.page_error_count)
        )

    def __repr__(self):
        return "BatchReport(%s)" % self.summary()


class BatchRunner:
    """Replays many traces, one isolated browser instance each.

    ``browser_factory()`` must return a fresh browser wired to a fresh
    application environment — the same contract WebErr's campaigns use.
    Engine policies (timing, locator, failure, driver config) apply to
    every session in the batch; ``observers`` are standing observers
    subscribed to every session's event stream.
    """

    def __init__(self, browser_factory, driver_config=None, timing=None,
                 locator=None, failure=None, observers=None):
        self.browser_factory = browser_factory
        self.driver_config = driver_config
        self.timing = timing
        self.locator = locator
        self.failure = failure
        self.observers = list(observers or [])

    def run(self, traces, labels=None, trace_dir=None):
        """Replay every trace on its own browser; returns a BatchReport.

        With ``trace_dir`` set, runs the batch under telemetry tracing
        and writes one Chrome trace file per trace plus the merged
        ``batch.trace.json`` timeline into that directory.
        """
        traces = list(traces)
        if labels is None:
            labels = [self._default_label(trace, index)
                      for index, trace in enumerate(traces)]
        if len(labels) != len(traces):
            raise ValueError("need one label per trace")
        if trace_dir is None:
            return self._run(traces, labels, tracer=None, trace_dir=None)
        os.makedirs(trace_dir, exist_ok=True)
        if telemetry.enabled():
            # A caller already installed a tracer (e.g. an outer
            # tracing() block) — record into it rather than nesting.
            return self._run(traces, labels, tracer=telemetry.current(),
                             trace_dir=trace_dir)
        with telemetry.tracing() as tracer:
            batch = self._run(traces, labels, tracer=tracer,
                              trace_dir=trace_dir)
            telemetry.write_trace(
                os.path.join(trace_dir, "batch.trace.json"), tracer)
        return batch

    def _run(self, traces, labels, tracer, trace_dir):
        batch = BatchReport()
        perf_totals = PerfCountersObserver()
        used_stems = set()
        for label, trace in zip(labels, traces):
            browser = self.browser_factory()
            if tracer is not None:
                # Virtual timestamps come from the session's own clock.
                tracer.clock = browser.clock
                mark = tracer.mark()
            engine = SessionEngine(
                browser,
                driver_config=self.driver_config,
                timing=self.timing,
                locator=self.locator,
                failure=self.failure,
                observers=self.observers + [perf_totals],
            )
            report = engine.run(trace)
            batch.add(TraceRun(label, trace, report))
            if tracer is not None and trace_dir is not None:
                stem = _safe_name(label)
                # Repeated labels (the same trace run twice) must not
                # overwrite each other's per-session slice.
                if stem in used_stems:
                    suffix = 2
                    while "%s-%d" % (stem, suffix) in used_stems:
                        suffix += 1
                    stem = "%s-%d" % (stem, suffix)
                used_stems.add(stem)
                telemetry.write_trace(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    tracer, events=tracer.events_since(mark))
        if tracer is not None:
            tracer.clock = None
        batch.perf_counters = perf_totals.summary()
        return batch

    @staticmethod
    def _default_label(trace, index):
        return trace.label or "trace-%d" % index


def _safe_name(label):
    """A filesystem-safe file stem for a trace label."""
    return "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in str(label)) or "trace"
