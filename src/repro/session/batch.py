"""Batch replay: many traces across isolated browser instances.

A :class:`BatchRunner` replays a list of traces, each against a *fresh*
:class:`~repro.browser.window.BrowserWindow` built by the caller's
factory, so sessions cannot contaminate each other (cookies, page
errors, cache state). Per-trace reports are aggregated into a
:class:`BatchReport`; a shared
:class:`~repro.session.observers.PerfCountersObserver` accumulates
fast-path cache activity across the whole batch.

With ``trace_dir`` set, the whole batch runs under one telemetry
tracer: every session's browser gets its own pid track, each trace's
slice of the timeline is written to ``<label>.trace.json``, and the
full merged batch timeline lands in ``batch.trace.json``.

With ``workers=N`` (N > 1) the batch fans out across a
:class:`~repro.session.pool.WorkerPool` of N processes: traces are
pulled dynamically from a shared queue, per-trace reports and
:mod:`repro.perf` counter deltas stream back and merge via
:meth:`BatchReport.merge`, and telemetry slices merge into one
``batch.trace.json`` timeline with each worker's browsers on their own
pid tracks. The default ``workers=1`` is exactly the serial in-process
path — same code, same determinism.
"""

import os
import time

from repro import telemetry
from repro.session import journal as run_journal
from repro.session.supervisor import throttle_seconds
from repro.session.engine import SessionEngine
from repro.session.observers import PerfCountersObserver
from repro.session.policies import FailurePolicy
from repro.session.report import RemoteError, ReplayReport


class TraceRun:
    """One trace's outcome within a batch."""

    def __init__(self, label, trace, report, resumed=False):
        self.label = label
        self.trace = trace
        self.report = report
        #: True when this run was replayed from a journal's finish
        #: record (``--resume``) rather than executed in this process.
        self.resumed = resumed

    def __repr__(self):
        return "TraceRun(%r, %s)" % (self.label, self.report.summary())


class BatchReport:
    """Aggregate outcome of a batch replay."""

    def __init__(self):
        self.runs = []
        #: {cache: {"hits", "misses", "hit_rate"}} across the batch.
        self.perf_counters = {}
        #: Quarantine diagnosis bundles for poison traces (each a dict:
        #: label, attempts, workers, stderr tail, chaos stamp, ...).
        self.quarantined = []
        #: True when a graceful drain stopped admission mid-run; the
        #: journal (if any) is resumable.
        self.drained = False

    def add(self, run):
        self.runs.append(run)

    @classmethod
    def merge(cls, reports):
        """Combine shard reports (e.g. one per pool worker) into one.

        Runs concatenate in the order given; perf counters sum through
        :meth:`~repro.session.observers.PerfCountersObserver.merge`, so
        hit rates are recomputed over the combined totals rather than
        averaged. Quarantine bundles concatenate; drain flags OR.
        """
        parts = list(reports)
        merged = cls()
        for report in parts:
            merged.runs.extend(report.runs)
            merged.quarantined.extend(report.quarantined)
            merged.drained = merged.drained or report.drained
        merged.perf_counters = PerfCountersObserver.merge(
            report.perf_counters for report in parts)
        return merged

    @property
    def trace_count(self):
        return len(self.runs)

    @property
    def complete_count(self):
        return sum(1 for run in self.runs if run.report.complete)

    @property
    def replayed_count(self):
        return sum(run.report.replayed_count for run in self.runs)

    @property
    def failed_count(self):
        return sum(run.report.failed_count for run in self.runs)

    @property
    def command_count(self):
        return sum(len(run.trace) for run in self.runs)

    @property
    def page_error_count(self):
        return sum(len(run.report.page_errors) for run in self.runs)

    @property
    def complete(self):
        """True when every trace in the batch replayed completely."""
        return self.runs != [] and self.complete_count == self.trace_count

    @property
    def resumed_count(self):
        """Traces replayed from the journal instead of executed."""
        return sum(1 for run in self.runs if run.resumed)

    def failures(self):
        return [run for run in self.runs if not run.report.complete]

    def summary(self):
        text = (
            "batch: %d/%d trace(s) complete; replayed %d/%d commands "
            "(%d failed); %d page error(s)"
            % (self.complete_count, self.trace_count, self.replayed_count,
               self.command_count, self.failed_count, self.page_error_count)
        )
        if self.resumed_count:
            text += "; %d resumed from journal" % self.resumed_count
        if self.quarantined:
            text += "; %d quarantined" % len(self.quarantined)
        if self.drained:
            text += "; drained (resumable)"
        return text

    def __repr__(self):
        return "BatchReport(%s)" % self.summary()


class _RunHooks:
    """Per-trace journaling and drain threading for one ``run()`` call.

    One instance is shared by whichever backend executes the batch.
    ``positions`` maps each *executed* trace's position in the
    (possibly resume-filtered) sub-batch back to its original index in
    the submitted batch, so journal records always speak in submission
    indexes and a resumed run appends to the same address space.
    """

    def __init__(self, journal=None, positions=None, drain=None):
        self.journal = journal
        self.positions = positions
        self.drain = drain
        self.drain_seen = False

    def index(self, position):
        return position if self.positions is None else self.positions[position]

    def on_start(self, position, label, attempt=1):
        if self.journal is not None:
            self.journal.start(self.index(position), label, attempt=attempt)

    def on_report(self, position, label, report):
        """A trace finished with a ReplayReport (serial/sharded path)."""
        if self.journal is None:
            return
        status = run_journal.REPLAYED if report.complete \
            else run_journal.FAILED
        error = report.halt_reason if report.halted else None
        error_class = (report.halt_error.type_name
                       if report.halted and report.halt_error is not None
                       else None)
        self.journal.finish(self.index(position), label, status,
                            report=report.to_dict(), error=error,
                            error_class=error_class)

    def on_outcome(self, outcome):
        """A pooled trace reached its final outcome (PoolOutcome)."""
        if self.journal is None or outcome.cancelled:
            return
        if outcome.report is not None:
            complete = (not outcome.report.get("halted")
                        and all(result.get("status") != "failed"
                                for result in outcome.report.get(
                                    "results", ())))
            status = run_journal.REPLAYED if complete else run_journal.FAILED
        elif outcome.quarantined is not None:
            status = run_journal.QUARANTINED
        else:
            status = run_journal.FAILED
        self.journal.finish(
            self.index(outcome.index), outcome.label, status,
            attempts=outcome.attempts, worker_id=outcome.worker_id,
            report=outcome.report, error=outcome.error,
            error_class=outcome.error_class,
            diagnosis=outcome.quarantined)

    def drain_requested(self):
        """The backend's admission gate; journals the first request."""
        if self.drain is None:
            return False
        if not self.drain():
            return False
        if not self.drain_seen:
            self.drain_seen = True
            if self.journal is not None:
                self.journal.event("drain")
        return True

    def event(self, kind, **payload):
        if self.journal is not None:
            self.journal.event(kind, **payload)


class BatchRunner:
    """Replays many traces, one isolated browser instance each.

    ``browser_factory()`` must return a fresh browser wired to a fresh
    application environment — the same contract WebErr's campaigns use.
    For ``workers > 1`` it may also be a
    :class:`~repro.session.pool.WorkerSpec` (or any picklable factory
    reference the spec accepts), since worker processes rebuild the
    factory on their side of the boundary. Engine policies (timing,
    locator, failure, driver config) apply to every session in the
    batch; ``observers`` are standing observers subscribed to every
    session's event stream — in-process only, so they are rejected when
    ``workers > 1`` (results merge parent-side instead).

    ``trace_timeout`` (seconds, ``workers > 1`` only) bounds any single
    trace: an over-deadline trace gets its worker killed and is
    re-queued once before being reported failed.

    ``journal`` (a file path) makes the run durable: every trace's
    start and final outcome is appended, fsync'd, to a WJ1 run journal
    (:mod:`repro.session.journal`), reports included. With
    ``resume=True`` and an existing journal, completed traces are
    replayed *from the journal* (marked ``resumed`` on their TraceRun)
    and only the remainder executes — the recovery path after a crash,
    a kill, or a graceful drain.
    """

    def __init__(self, browser_factory, driver_config=None, timing=None,
                 locator=None, failure=None, retry=None, observers=None,
                 workers=1, shards=1, trace_timeout=None, pool=None,
                 tape=None, trace_categories=None, journal=None,
                 resume=False):
        self.browser_factory = browser_factory
        #: Category spec for traced runs (``trace_dir`` set): anything
        #: :func:`~repro.telemetry.tracer.resolve_categories` accepts,
        #: e.g. ``"production"``. None records every category. Applies
        #: on all three backends (serial, sharded, pooled).
        self.trace_categories = trace_categories
        self.driver_config = driver_config
        self.timing = timing
        self.locator = locator
        self.failure = failure
        self.retry = retry
        self.observers = list(observers or [])
        #: Optional :class:`~repro.net.transport.TapeConfig` applied to
        #: every session's network: record each trace to its own tape
        #: (``<label>.tape`` under the config's directory) or play every
        #: trace back hermetically — on all three backends.
        self.tape = tape
        if workers < 1:
            raise ValueError("need at least one worker")
        if shards < 1:
            raise ValueError("need at least one shard")
        if workers > 1 and shards > 1:
            raise ValueError(
                "workers and shards are alternative scale-out backends: "
                "use shards=N for in-process interleaving (one core, zero "
                "pickling) or workers=N for a process pool (many cores)")
        self.workers = int(workers)
        self.shards = int(shards)
        self.trace_timeout = trace_timeout
        #: A live :class:`~repro.session.pool.WorkerPool` to reuse
        #: (warm workers amortized across many batches); the runner
        #: will not close it. None builds an ephemeral pool per run.
        self.pool = pool
        if pool is not None:
            self.workers = max(self.workers, pool.workers)
        #: Run-journal path (WJ1); None disables journaling.
        self.journal = journal
        self.resume = bool(resume)
        if resume and journal is None:
            raise ValueError("resume=True needs a journal path")

    @property
    def mode(self):
        """The batch backend this runner would use."""
        if self.workers > 1 or self.pool is not None:
            return "pooled"
        return "sharded" if self.shards > 1 else "serial"

    def run(self, traces, labels=None, trace_dir=None, drain=None):
        """Replay every trace on its own browser; returns a BatchReport.

        With ``trace_dir`` set, runs the batch under telemetry tracing
        and writes one Chrome trace file per trace plus the merged
        ``batch.trace.json`` timeline into that directory.

        ``drain`` is a zero-argument callable (e.g. a
        :class:`~repro.session.supervisor.GracefulDrain`): once it
        returns True, admission stops, in-flight traces finish, and the
        report comes back with ``drained=True`` — with a journal, the
        run is resumable from exactly that point.
        """
        traces = list(traces)
        if labels is None:
            labels = _dedupe_labels([self._default_label(trace, index)
                                     for index, trace in enumerate(traces)])
        if len(labels) != len(traces):
            raise ValueError("need one label per trace")
        if self.journal is None:
            hooks = _RunHooks(drain=drain)
            batch = self._execute(traces, labels, trace_dir, hooks)
            batch.drained = batch.drained or hooks.drain_seen
            return batch
        return self._run_journaled(traces, labels, trace_dir, drain)

    def _run_journaled(self, traces, labels, trace_dir, drain):
        """The durable path: journal every outcome; resume skips done."""
        # One trace object fanned out across many labels (the common
        # stress-batch shape) hashes once, not once per label.
        digest_memo = {}
        digests = []
        for trace in traces:
            digest = digest_memo.get(id(trace))
            if digest is None:
                digest = run_journal.trace_digest(trace.to_text())
                digest_memo[id(trace)] = digest
            digests.append(digest)
        finished = {}
        if self.resume and os.path.exists(self.journal):
            journal, snapshot = run_journal.RunJournal.resume(
                self.journal, labels, digests)
            finished = {index: record for index, record
                        in snapshot.finish_by_index().items()
                        if index < len(traces)}
        else:
            journal = run_journal.RunJournal.create(
                self.journal,
                run_journal.batch_config(labels, digests, self.mode))
        remaining = [index for index in range(len(traces))
                     if index not in finished]
        hooks = _RunHooks(journal=journal, positions=remaining, drain=drain)
        try:
            if remaining:
                fresh = self._execute([traces[i] for i in remaining],
                                      [labels[i] for i in remaining],
                                      trace_dir, hooks)
            else:
                fresh = BatchReport()
        finally:
            journal.close()
        # Reassemble in submission order: journal-replayed runs fill the
        # slots the backend never saw. Labels are already deduped, so
        # they address runs unambiguously.
        fresh_by_label = {run.label: run for run in fresh.runs}
        batch = BatchReport()
        batch.perf_counters = fresh.perf_counters
        batch.quarantined = list(fresh.quarantined)
        batch.drained = fresh.drained or hooks.drain_seen
        for index, (label, trace) in enumerate(zip(labels, traces)):
            if index in finished:
                run = self._run_from_record(label, trace, finished[index])
                batch.add(run)
                if finished[index].diagnosis is not None:
                    batch.quarantined.append(finished[index].diagnosis)
            elif label in fresh_by_label:
                batch.add(fresh_by_label[label])
            # else: never admitted (halt or drain) — absent from the
            # report, unfinished in the journal, re-run on resume.
        return batch

    @staticmethod
    def _run_from_record(label, trace, record):
        """Reconstruct a TraceRun from a journal finish record."""
        if record.report is not None:
            report = ReplayReport.from_dict(record.report, trace=trace)
        else:
            report = ReplayReport(trace)
            report.halted = True
            report.halt_reason = (record.error
                                  or "failed in journaled run")
            report.halt_error = RemoteError(
                report.halt_reason,
                type_name=record.error_class or "WorkerError")
        return TraceRun(label, trace, report, resumed=True)

    def _execute(self, traces, labels, trace_dir, hooks):
        """Dispatch to the serial/sharded/pooled backend."""
        if self.workers > 1 or self.pool is not None:
            return self._run_pooled(traces, labels, trace_dir, hooks)
        execute = self._run_sharded if self.shards > 1 else self._run
        if trace_dir is None:
            return execute(traces, labels, tracer=None, trace_dir=None,
                           hooks=hooks)
        os.makedirs(trace_dir, exist_ok=True)
        if telemetry.enabled():
            # A caller already installed a tracer (e.g. an outer
            # tracing() block) — record into it rather than nesting.
            return execute(traces, labels, tracer=telemetry.current(),
                           trace_dir=trace_dir, hooks=hooks)
        with telemetry.tracing(categories=self.trace_categories) as tracer:
            batch = execute(traces, labels, tracer=tracer,
                            trace_dir=trace_dir, hooks=hooks)
            telemetry.write_trace(
                os.path.join(trace_dir, "batch.trace.json"), tracer)
        return batch

    # -- serial (in-process) execution --------------------------------------

    def _run(self, traces, labels, tracer, trace_dir, hooks=None):
        hooks = hooks if hooks is not None else _RunHooks()
        batch = BatchReport()
        perf_totals = PerfCountersObserver()
        used_stems = set()
        throttle = throttle_seconds()
        for position, (label, trace) in enumerate(zip(labels, traces)):
            if hooks.drain_requested():
                # Graceful drain: stop admission; everything already
                # finished is journaled, the rest resumes later.
                batch.drained = True
                break
            hooks.on_start(position, label)
            if throttle:
                time.sleep(throttle)
            browser = self.browser_factory()
            tape_session = (self.tape.attach(browser.network, label)
                            if self.tape is not None else None)
            mark = None
            if tracer is not None:
                # Virtual timestamps come from the session's own clock.
                tracer.clock = browser.clock
                mark = tracer.mark()
            try:
                engine = SessionEngine(
                    browser,
                    driver_config=self.driver_config,
                    timing=self.timing,
                    locator=self.locator,
                    failure=self.failure,
                    retry=self.retry,
                    observers=self.observers + [perf_totals],
                )
                report = engine.run(trace)
            finally:
                # Reset even when the engine raises mid-batch: a stale
                # clock would stamp later events (or a later trace) with
                # a dead session's virtual time.
                if tracer is not None:
                    tracer.clock = None
                if tape_session is not None:
                    tape_session.finish()
            batch.add(TraceRun(label, trace, report))
            hooks.on_report(position, label, report)
            if tracer is not None and trace_dir is not None:
                stem = _unique_stem(label, used_stems)
                telemetry.write_trace(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    tracer, events=tracer.events_since(mark))
            if report.halted and self._halts_batch():
                # FailurePolicy.halt is the batch-level abort: stop
                # dispatching the remaining traces. (stop/continue end
                # at session scope; the batch carries on.)
                break
        batch.perf_counters = perf_totals.summary()
        return batch

    def _halts_batch(self):
        """True when the runner's failure policy is ``halt``."""
        return (self.failure is not None
                and self.failure.on_failure == FailurePolicy.HALT)

    # -- sharded (in-process interleaved) execution ---------------------------

    def _run_sharded(self, traces, labels, tracer, trace_dir, hooks=None):
        from repro.session.shard import ShardedRunner

        runner = ShardedRunner(
            self.browser_factory, self.shards,
            driver_config=self.driver_config, timing=self.timing,
            locator=self.locator, failure=self.failure, retry=self.retry,
            observers=self.observers, tape=self.tape)
        write_trace = None
        if tracer is not None and trace_dir is not None:
            def write_trace(stem, events):
                telemetry.write_trace(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    tracer, events=events)
        return runner.run(traces, labels, tracer=tracer,
                          trace_dir=trace_dir, write_trace=write_trace,
                          hooks=hooks)

    # -- pooled (multiprocess) execution -------------------------------------

    def _run_pooled(self, traces, labels, trace_dir, hooks=None):
        from repro.session.pool import WorkerPool, WorkerSpec
        from repro.telemetry.merge import TraceMerger

        hooks = hooks if hooks is not None else _RunHooks()
        if self.observers:
            raise ValueError(
                "standing observers cannot follow sessions into worker "
                "processes; run with workers=1, or merge shard results "
                "parent-side (see PerfCountersObserver.merge)")
        engine_config = {
            "driver_config": self.driver_config,
            "timing": self.timing,
            "locator": self.locator,
            "failure": self.failure,
            "retry": self.retry,
        }
        pool = self.pool
        owned = pool is None
        if owned:
            spec = (self.browser_factory
                    if isinstance(self.browser_factory, WorkerSpec)
                    else WorkerSpec(self.browser_factory))
            pool = WorkerPool(
                spec, self.workers,
                driver_config=self.driver_config, timing=self.timing,
                locator=self.locator, failure=self.failure, retry=self.retry,
                trace_timeout=self.trace_timeout)
        tracing_on = trace_dir is not None
        if tracing_on:
            os.makedirs(trace_dir, exist_ok=True)
        tasks = [(label, trace.to_text())
                 for label, trace in zip(labels, traces)]
        # Journal every admission up front: the pool schedules chunks
        # dynamically, so "started" means "handed to the farm".
        for position, label in enumerate(labels):
            hooks.on_start(position, label)
        try:
            # A borrowed pool keeps its workers warm for the caller's
            # next batch; its chunks run under *this* runner's policies.
            outcomes, dropped = pool.run(
                tasks,
                tracing=(self.trace_categories or True) if tracing_on
                else False,
                engine_config=engine_config, tape=self.tape,
                on_outcome=hooks.on_outcome,
                drain=hooks.drain_requested if hooks.drain is not None
                else None)
        finally:
            if owned:
                pool.close()
        if pool.stats.get("degraded"):
            hooks.event("degraded", deaths=pool.supervisor.deaths)
        merger = TraceMerger()
        merger.dropped += dropped
        used_stems = set()
        shards = []
        drained = False
        for outcome, label, trace in zip(outcomes, labels, traces):
            if outcome.cancelled:
                # Recalled by a graceful drain before it ran: no run,
                # no journal finish — it re-runs on resume.
                drained = True
                continue
            if outcome.report is not None:
                report = ReplayReport.from_dict(outcome.report, trace=trace)
            else:
                # Containment outcome: the worker died or the trace was
                # killed on timeout — report it failed, keep the batch.
                # halt_error's type_name discriminates deadline kills
                # (TimeoutError) from dead workers (WorkerCrashError).
                report = ReplayReport(trace)
                report.halted = True
                report.halt_reason = outcome.error or "worker failed"
                report.halt_error = RemoteError(
                    report.halt_reason,
                    type_name=outcome.error_class or "WorkerError")
            shard = BatchReport()
            shard.add(TraceRun(label, trace, report))
            shard.perf_counters = report.perf_counters
            if outcome.quarantined is not None:
                shard.quarantined.append(outcome.quarantined)
            shards.append(shard)
            if tracing_on and outcome.events is not None:
                events, metadata = merger.add_session(
                    outcome.worker_id, outcome.events,
                    outcome.metadata or ())
                stem = _unique_stem(label, used_stems)
                telemetry.write_trace_dict(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    telemetry.to_trace_dict_raw(events, metadata=metadata))
        batch = BatchReport.merge(shards)
        batch.drained = drained
        if tracing_on:
            telemetry.write_trace_dict(
                os.path.join(trace_dir, "batch.trace.json"),
                merger.trace_dict())
        return batch

    @staticmethod
    def _default_label(trace, index):
        return trace.label or "trace-%d" % index


def _dedupe_labels(labels):
    """Suffix repeated labels (``x``, ``x-2``, ``x-3``) so every
    :class:`TraceRun` in a batch is unambiguously addressable."""
    seen = set()
    result = []
    for label in labels:
        unique = label
        if unique in seen:
            suffix = 2
            while "%s-%d" % (label, suffix) in seen:
                suffix += 1
            unique = "%s-%d" % (label, suffix)
        seen.add(unique)
        result.append(unique)
    return result


def _unique_stem(label, used_stems):
    """A filesystem stem for ``label``, deduped against ``used_stems``.

    Repeated labels (the same trace run twice) must not overwrite each
    other's per-session trace file.
    """
    stem = _safe_name(label)
    if stem in used_stems:
        suffix = 2
        while "%s-%d" % (stem, suffix) in used_stems:
            suffix += 1
        stem = "%s-%d" % (stem, suffix)
    used_stems.add(stem)
    return stem


def _safe_name(label):
    """A filesystem-safe file stem for a trace label."""
    return "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in str(label)) or "trace"
