"""Batch replay: many traces across isolated browser instances.

A :class:`BatchRunner` replays a list of traces, each against a *fresh*
:class:`~repro.browser.window.BrowserWindow` built by the caller's
factory, so sessions cannot contaminate each other (cookies, page
errors, cache state). Per-trace reports are aggregated into a
:class:`BatchReport`; a shared
:class:`~repro.session.observers.PerfCountersObserver` accumulates
fast-path cache activity across the whole batch.

With ``trace_dir`` set, the whole batch runs under one telemetry
tracer: every session's browser gets its own pid track, each trace's
slice of the timeline is written to ``<label>.trace.json``, and the
full merged batch timeline lands in ``batch.trace.json``.

With ``workers=N`` (N > 1) the batch fans out across a
:class:`~repro.session.pool.WorkerPool` of N processes: traces are
pulled dynamically from a shared queue, per-trace reports and
:mod:`repro.perf` counter deltas stream back and merge via
:meth:`BatchReport.merge`, and telemetry slices merge into one
``batch.trace.json`` timeline with each worker's browsers on their own
pid tracks. The default ``workers=1`` is exactly the serial in-process
path — same code, same determinism.
"""

import os

from repro import telemetry
from repro.session.engine import SessionEngine
from repro.session.observers import PerfCountersObserver
from repro.session.policies import FailurePolicy
from repro.session.report import RemoteError, ReplayReport


class TraceRun:
    """One trace's outcome within a batch."""

    def __init__(self, label, trace, report):
        self.label = label
        self.trace = trace
        self.report = report

    def __repr__(self):
        return "TraceRun(%r, %s)" % (self.label, self.report.summary())


class BatchReport:
    """Aggregate outcome of a batch replay."""

    def __init__(self):
        self.runs = []
        #: {cache: {"hits", "misses", "hit_rate"}} across the batch.
        self.perf_counters = {}

    def add(self, run):
        self.runs.append(run)

    @classmethod
    def merge(cls, reports):
        """Combine shard reports (e.g. one per pool worker) into one.

        Runs concatenate in the order given; perf counters sum through
        :meth:`~repro.session.observers.PerfCountersObserver.merge`, so
        hit rates are recomputed over the combined totals rather than
        averaged.
        """
        parts = list(reports)
        merged = cls()
        for report in parts:
            merged.runs.extend(report.runs)
        merged.perf_counters = PerfCountersObserver.merge(
            report.perf_counters for report in parts)
        return merged

    @property
    def trace_count(self):
        return len(self.runs)

    @property
    def complete_count(self):
        return sum(1 for run in self.runs if run.report.complete)

    @property
    def replayed_count(self):
        return sum(run.report.replayed_count for run in self.runs)

    @property
    def failed_count(self):
        return sum(run.report.failed_count for run in self.runs)

    @property
    def command_count(self):
        return sum(len(run.trace) for run in self.runs)

    @property
    def page_error_count(self):
        return sum(len(run.report.page_errors) for run in self.runs)

    @property
    def complete(self):
        """True when every trace in the batch replayed completely."""
        return self.runs != [] and self.complete_count == self.trace_count

    def failures(self):
        return [run for run in self.runs if not run.report.complete]

    def summary(self):
        return (
            "batch: %d/%d trace(s) complete; replayed %d/%d commands "
            "(%d failed); %d page error(s)"
            % (self.complete_count, self.trace_count, self.replayed_count,
               self.command_count, self.failed_count, self.page_error_count)
        )

    def __repr__(self):
        return "BatchReport(%s)" % self.summary()


class BatchRunner:
    """Replays many traces, one isolated browser instance each.

    ``browser_factory()`` must return a fresh browser wired to a fresh
    application environment — the same contract WebErr's campaigns use.
    For ``workers > 1`` it may also be a
    :class:`~repro.session.pool.WorkerSpec` (or any picklable factory
    reference the spec accepts), since worker processes rebuild the
    factory on their side of the boundary. Engine policies (timing,
    locator, failure, driver config) apply to every session in the
    batch; ``observers`` are standing observers subscribed to every
    session's event stream — in-process only, so they are rejected when
    ``workers > 1`` (results merge parent-side instead).

    ``trace_timeout`` (seconds, ``workers > 1`` only) bounds any single
    trace: an over-deadline trace gets its worker killed and is
    re-queued once before being reported failed.
    """

    def __init__(self, browser_factory, driver_config=None, timing=None,
                 locator=None, failure=None, retry=None, observers=None,
                 workers=1, shards=1, trace_timeout=None, pool=None,
                 tape=None, trace_categories=None):
        self.browser_factory = browser_factory
        #: Category spec for traced runs (``trace_dir`` set): anything
        #: :func:`~repro.telemetry.tracer.resolve_categories` accepts,
        #: e.g. ``"production"``. None records every category. Applies
        #: on all three backends (serial, sharded, pooled).
        self.trace_categories = trace_categories
        self.driver_config = driver_config
        self.timing = timing
        self.locator = locator
        self.failure = failure
        self.retry = retry
        self.observers = list(observers or [])
        #: Optional :class:`~repro.net.transport.TapeConfig` applied to
        #: every session's network: record each trace to its own tape
        #: (``<label>.tape`` under the config's directory) or play every
        #: trace back hermetically — on all three backends.
        self.tape = tape
        if workers < 1:
            raise ValueError("need at least one worker")
        if shards < 1:
            raise ValueError("need at least one shard")
        if workers > 1 and shards > 1:
            raise ValueError(
                "workers and shards are alternative scale-out backends: "
                "use shards=N for in-process interleaving (one core, zero "
                "pickling) or workers=N for a process pool (many cores)")
        self.workers = int(workers)
        self.shards = int(shards)
        self.trace_timeout = trace_timeout
        #: A live :class:`~repro.session.pool.WorkerPool` to reuse
        #: (warm workers amortized across many batches); the runner
        #: will not close it. None builds an ephemeral pool per run.
        self.pool = pool
        if pool is not None:
            self.workers = max(self.workers, pool.workers)

    def run(self, traces, labels=None, trace_dir=None):
        """Replay every trace on its own browser; returns a BatchReport.

        With ``trace_dir`` set, runs the batch under telemetry tracing
        and writes one Chrome trace file per trace plus the merged
        ``batch.trace.json`` timeline into that directory.
        """
        traces = list(traces)
        if labels is None:
            labels = _dedupe_labels([self._default_label(trace, index)
                                     for index, trace in enumerate(traces)])
        if len(labels) != len(traces):
            raise ValueError("need one label per trace")
        if self.workers > 1 or self.pool is not None:
            return self._run_pooled(traces, labels, trace_dir)
        execute = self._run_sharded if self.shards > 1 else self._run
        if trace_dir is None:
            return execute(traces, labels, tracer=None, trace_dir=None)
        os.makedirs(trace_dir, exist_ok=True)
        if telemetry.enabled():
            # A caller already installed a tracer (e.g. an outer
            # tracing() block) — record into it rather than nesting.
            return execute(traces, labels, tracer=telemetry.current(),
                           trace_dir=trace_dir)
        with telemetry.tracing(categories=self.trace_categories) as tracer:
            batch = execute(traces, labels, tracer=tracer,
                            trace_dir=trace_dir)
            telemetry.write_trace(
                os.path.join(trace_dir, "batch.trace.json"), tracer)
        return batch

    # -- serial (in-process) execution --------------------------------------

    def _run(self, traces, labels, tracer, trace_dir):
        batch = BatchReport()
        perf_totals = PerfCountersObserver()
        used_stems = set()
        for label, trace in zip(labels, traces):
            browser = self.browser_factory()
            tape_session = (self.tape.attach(browser.network, label)
                            if self.tape is not None else None)
            mark = None
            if tracer is not None:
                # Virtual timestamps come from the session's own clock.
                tracer.clock = browser.clock
                mark = tracer.mark()
            try:
                engine = SessionEngine(
                    browser,
                    driver_config=self.driver_config,
                    timing=self.timing,
                    locator=self.locator,
                    failure=self.failure,
                    retry=self.retry,
                    observers=self.observers + [perf_totals],
                )
                report = engine.run(trace)
            finally:
                # Reset even when the engine raises mid-batch: a stale
                # clock would stamp later events (or a later trace) with
                # a dead session's virtual time.
                if tracer is not None:
                    tracer.clock = None
                if tape_session is not None:
                    tape_session.finish()
            batch.add(TraceRun(label, trace, report))
            if tracer is not None and trace_dir is not None:
                stem = _unique_stem(label, used_stems)
                telemetry.write_trace(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    tracer, events=tracer.events_since(mark))
            if report.halted and self._halts_batch():
                # FailurePolicy.halt is the batch-level abort: stop
                # dispatching the remaining traces. (stop/continue end
                # at session scope; the batch carries on.)
                break
        batch.perf_counters = perf_totals.summary()
        return batch

    def _halts_batch(self):
        """True when the runner's failure policy is ``halt``."""
        return (self.failure is not None
                and self.failure.on_failure == FailurePolicy.HALT)

    # -- sharded (in-process interleaved) execution ---------------------------

    def _run_sharded(self, traces, labels, tracer, trace_dir):
        from repro.session.shard import ShardedRunner

        runner = ShardedRunner(
            self.browser_factory, self.shards,
            driver_config=self.driver_config, timing=self.timing,
            locator=self.locator, failure=self.failure, retry=self.retry,
            observers=self.observers, tape=self.tape)
        write_trace = None
        if tracer is not None and trace_dir is not None:
            def write_trace(stem, events):
                telemetry.write_trace(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    tracer, events=events)
        return runner.run(traces, labels, tracer=tracer,
                          trace_dir=trace_dir, write_trace=write_trace)

    # -- pooled (multiprocess) execution -------------------------------------

    def _run_pooled(self, traces, labels, trace_dir):
        from repro.session.pool import WorkerPool, WorkerSpec
        from repro.telemetry.merge import TraceMerger

        if self.observers:
            raise ValueError(
                "standing observers cannot follow sessions into worker "
                "processes; run with workers=1, or merge shard results "
                "parent-side (see PerfCountersObserver.merge)")
        engine_config = {
            "driver_config": self.driver_config,
            "timing": self.timing,
            "locator": self.locator,
            "failure": self.failure,
            "retry": self.retry,
        }
        pool = self.pool
        owned = pool is None
        if owned:
            spec = (self.browser_factory
                    if isinstance(self.browser_factory, WorkerSpec)
                    else WorkerSpec(self.browser_factory))
            pool = WorkerPool(
                spec, self.workers,
                driver_config=self.driver_config, timing=self.timing,
                locator=self.locator, failure=self.failure, retry=self.retry,
                trace_timeout=self.trace_timeout)
        tracing_on = trace_dir is not None
        if tracing_on:
            os.makedirs(trace_dir, exist_ok=True)
        tasks = [(label, trace.to_text())
                 for label, trace in zip(labels, traces)]
        try:
            # A borrowed pool keeps its workers warm for the caller's
            # next batch; its chunks run under *this* runner's policies.
            outcomes, dropped = pool.run(
                tasks,
                tracing=(self.trace_categories or True) if tracing_on
                else False,
                engine_config=engine_config, tape=self.tape)
        finally:
            if owned:
                pool.close()
        merger = TraceMerger()
        merger.dropped += dropped
        used_stems = set()
        shards = []
        for outcome, label, trace in zip(outcomes, labels, traces):
            if outcome.report is not None:
                report = ReplayReport.from_dict(outcome.report, trace=trace)
            else:
                # Containment outcome: the worker died or the trace was
                # killed on timeout — report it failed, keep the batch.
                # halt_error's type_name discriminates deadline kills
                # (TimeoutError) from dead workers (WorkerCrashError).
                report = ReplayReport(trace)
                report.halted = True
                report.halt_reason = outcome.error or "worker failed"
                report.halt_error = RemoteError(
                    report.halt_reason,
                    type_name=outcome.error_class or "WorkerError")
            shard = BatchReport()
            shard.add(TraceRun(label, trace, report))
            shard.perf_counters = report.perf_counters
            shards.append(shard)
            if tracing_on and outcome.events is not None:
                events, metadata = merger.add_session(
                    outcome.worker_id, outcome.events,
                    outcome.metadata or ())
                stem = _unique_stem(label, used_stems)
                telemetry.write_trace_dict(
                    os.path.join(trace_dir, "%s.trace.json" % stem),
                    telemetry.to_trace_dict_raw(events, metadata=metadata))
        batch = BatchReport.merge(shards)
        if tracing_on:
            telemetry.write_trace_dict(
                os.path.join(trace_dir, "batch.trace.json"),
                merger.trace_dict())
        return batch

    @staticmethod
    def _default_label(trace, index):
        return trace.label or "trace-%d" % index


def _dedupe_labels(labels):
    """Suffix repeated labels (``x``, ``x-2``, ``x-3``) so every
    :class:`TraceRun` in a batch is unambiguously addressable."""
    seen = set()
    result = []
    for label in labels:
        unique = label
        if unique in seen:
            suffix = 2
            while "%s-%d" % (label, suffix) in seen:
                suffix += 1
            unique = "%s-%d" % (label, suffix)
        seen.add(unique)
        result.append(unique)
    return result


def _unique_stem(label, used_stems):
    """A filesystem stem for ``label``, deduped against ``used_stems``.

    Repeated labels (the same trace run twice) must not overwrite each
    other's per-session trace file.
    """
    stem = _safe_name(label)
    if stem in used_stems:
        suffix = 2
        while "%s-%d" % (stem, suffix) in used_stems:
            suffix += 1
        stem = "%s-%d" % (stem, suffix)
    used_stems.add(stem)
    return stem


def _safe_name(label):
    """A filesystem-safe file stem for a trace label."""
    return "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in str(label)) or "trace"
