"""Multiprocess batch replay: the worker-pool execution backend.

Once single-session replay is fast, the next multiplier is running many
replays at once — every session in a batch is fully isolated by
construction (fresh browser per trace), so a batch is embarrassingly
parallel. :class:`WorkerPool` spawns N worker processes; each worker
builds its *own* browser factory from a picklable :class:`WorkerSpec`
(live :class:`~repro.browser.window.Browser` objects cannot cross a
process boundary, so the spec names the factory by dotted path or
registered builder), pulls traces from a shared task queue, replays
them through a :class:`~repro.session.engine.SessionEngine`, and
streams back portable results: a
:class:`~repro.session.report.ReplayReport` dict, the session's
:mod:`repro.perf` counter delta, and — when tracing — the session's
slice of the worker's telemetry timeline.

Scheduling is dynamic: workers *pull* whenever they go idle, so one
slow trace occupies one worker while the rest of the pool keeps
draining the queue (static round-robin sharding would idle N-1 workers
behind the slowest shard). Two containment mechanisms keep a batch
live:

- **crash containment** — a worker that dies mid-trace (segfault,
  ``os._exit``, OOM kill) marks its in-flight trace failed; the parent
  spawns a replacement and the pool keeps draining;
- **per-trace timeout** — with ``trace_timeout`` set, a trace running
  longer than the bound gets its worker killed and is re-queued *once*
  (a transient stall deserves a second chance; a deterministic hang
  does not).

The parent merges everything into one
:class:`~repro.session.batch.BatchReport` via
:meth:`~repro.session.batch.BatchReport.merge`; counter deltas sum
through :meth:`~repro.session.observers.PerfCountersObserver.merge`
(observer *instances* never cross processes), and telemetry slices
merge through :class:`~repro.telemetry.merge.TraceMerger`, which remaps
every worker's pid/tid tracks into one coherent timeline.
"""

import importlib
import multiprocessing
import pickle
import queue as queue_module
import time
import traceback

from repro.telemetry.events import DEFAULT_BUFFER_SIZE

#: Builders registered under a plain name for WorkerSpec resolution.
_factory_builders = {}


def register_factory(name, builder=None):
    """Register ``builder`` under ``name`` for :class:`WorkerSpec` use.

    Usable directly or as a decorator::

        @register_factory("sites")
        def sites_factory(): ...

    Registration is per-process module state: under the default
    ``fork`` start method workers inherit it, but under ``spawn`` the
    registering module must be imported in the child too — prefer
    dotted-path references for specs that must survive ``spawn``.
    """
    if builder is None:
        def decorator(function):
            _factory_builders[name] = function
            return function
        return decorator
    _factory_builders[name] = builder
    return builder


def resolve_factory(reference):
    """Resolve a factory reference to a callable.

    Accepts a registered builder name, a dotted path
    (``"package.module:attribute"`` or ``"package.module.attribute"``),
    or a callable (returned unchanged).
    """
    if callable(reference):
        return reference
    if not isinstance(reference, str):
        raise TypeError("factory reference must be a callable or str, "
                        "got %r" % (reference,))
    if reference in _factory_builders:
        return _factory_builders[reference]
    if ":" in reference:
        module_name, _, attribute = reference.partition(":")
    elif "." in reference:
        module_name, _, attribute = reference.rpartition(".")
    else:
        raise ValueError(
            "unknown factory %r: not a registered builder, and not a "
            "dotted 'module:attr' path" % reference)
    module = importlib.import_module(module_name)
    try:
        target = getattr(module, attribute)
    except AttributeError:
        raise ValueError("module %r has no attribute %r"
                         % (module_name, attribute))
    if not callable(target):
        raise TypeError("factory reference %r resolves to a non-callable "
                        "%r" % (reference, target))
    return target


class WorkerSpec:
    """A picklable recipe for a worker's browser factory.

    ``factory`` is a callable (a module-level function — lambdas and
    closures cannot be pickled) or a string reference resolvable by
    :func:`resolve_factory`. With ``factory_args``/``factory_kwargs``
    the resolved callable is treated as a *builder*: it is invoked once
    per worker with those arguments and must return the per-session
    browser factory. Without them, the resolved callable *is* the
    factory.
    """

    def __init__(self, factory, factory_args=(), factory_kwargs=None,
                 trace_buffer_size=DEFAULT_BUFFER_SIZE):
        self.factory = factory
        self.factory_args = tuple(factory_args)
        self.factory_kwargs = dict(factory_kwargs or {})
        #: Ring-buffer capacity of each worker's private tracer.
        self.trace_buffer_size = trace_buffer_size

    def make_factory(self):
        """Resolve and (if a builder) apply the recipe; in-process too."""
        target = resolve_factory(self.factory)
        if self.factory_args or self.factory_kwargs:
            return target(*self.factory_args, **self.factory_kwargs)
        return target

    def validate(self):
        """Fail fast in the parent: resolvable reference, picklable spec."""
        if isinstance(self.factory, str):
            resolve_factory(self.factory)
        try:
            pickle.dumps(self)
        except Exception as error:
            raise ValueError(
                "WorkerSpec is not picklable (%s); worker processes need a "
                "module-level factory function or a string reference, not "
                "a lambda or closure" % error)
        return self

    def __repr__(self):
        return "WorkerSpec(%r)" % (self.factory,)


class PoolOutcome:
    """One trace's result as it came back over the result queue."""

    __slots__ = ("index", "label", "report", "events", "metadata",
                 "error", "error_class", "worker_id", "attempts")

    def __init__(self, index, label):
        self.index = index
        self.label = label
        #: Portable :class:`ReplayReport` dict, or None on worker failure.
        self.report = None
        #: Telemetry event dicts for this session (tracing runs only).
        self.events = None
        #: The worker registry's track-naming metadata event dicts.
        self.metadata = None
        #: Worker-side traceback / containment reason when the trace
        #: never produced a report.
        self.error = None
        #: Discriminates *how* the trace failed: ``"TimeoutError"`` for a
        #: per-trace deadline kill, ``"WorkerCrashError"`` for a dead
        #: worker process, or the worker-side exception class name.
        self.error_class = None
        self.worker_id = None
        self.attempts = 1

    @property
    def ok(self):
        return self.report is not None

    def __repr__(self):
        return "PoolOutcome(%d, %r, %s)" % (
            self.index, self.label, "ok" if self.ok else "failed")


# -- worker side --------------------------------------------------------------


def _replay_task(factory, engine_config, trace_text, tracer):
    """Replay one trace on a fresh browser; returns a portable payload."""
    from repro.core.trace import WarrTrace
    from repro.session.engine import SessionEngine

    trace = WarrTrace.from_text(trace_text)
    browser = factory()
    mark = None
    if tracer is not None:
        # Virtual timestamps come from this session's own clock.
        tracer.clock = browser.clock
        mark = tracer.mark()
    try:
        engine = SessionEngine(browser, **engine_config)
        report = engine.run(trace)
    finally:
        if tracer is not None:
            tracer.clock = None
    payload = {"report": report.to_dict()}
    if tracer is not None:
        payload["events"] = [event.to_dict()
                             for event in tracer.events_since(mark)]
        payload["metadata"] = [event.to_dict()
                               for event in tracer.registry.metadata_events]
    return payload


def _worker_main(slot, worker_id, spec, engine_config, task_queue,
                 result_queue, current, tracing):
    """Worker loop: pull tasks until the sentinel, stream back results."""
    from repro import telemetry
    from repro.telemetry.tracer import Tracer

    # A fork inherits the parent's installed tracer (if any); the worker
    # records into its own private buffer instead.
    telemetry.uninstall()
    tracer = None
    if tracing:
        tracer = Tracer(buffer_size=spec.trace_buffer_size)
        telemetry.install(tracer)
    factory = None
    while True:
        task = task_queue.get()
        if task is None:
            break
        index, trace_text = task
        # Shared-memory in-flight marker: written *before* any user code
        # runs so the parent can attribute a crash even when the dying
        # process never flushes a message.
        current[slot] = index
        try:
            if factory is None:
                factory = spec.make_factory()
            payload = _replay_task(factory, engine_config, trace_text, tracer)
            message = ("result", worker_id, index, payload)
        except BaseException as exc:
            message = ("error", worker_id, index, traceback.format_exc(),
                       type(exc).__name__)
        result_queue.put(message)
        current[slot] = -1
    result_queue.put(("done", worker_id,
                      {"dropped": tracer.buffer.dropped if tracer else 0}))


# -- parent side --------------------------------------------------------------


class _WorkerHandle:
    """Parent-side view of one worker slot."""

    __slots__ = ("slot", "worker_id", "process", "inflight_index",
                 "inflight_since", "finished")

    def __init__(self, slot, worker_id, process):
        self.slot = slot
        self.worker_id = worker_id
        self.process = process
        self.inflight_index = -1
        self.inflight_since = None
        self.finished = False


class WorkerPool:
    """Replays traces across N worker processes with dynamic scheduling.

    ``spec`` describes the browser factory; the engine policy objects
    (all picklable strategy objects) configure every worker's
    :class:`~repro.session.engine.SessionEngine` exactly as the serial
    batch runner would.
    """

    def __init__(self, spec, workers, driver_config=None, timing=None,
                 locator=None, failure=None, retry=None, trace_timeout=None,
                 poll_interval=0.05, drain_timeout=10.0, context=None):
        if workers < 1:
            raise ValueError("need at least one worker")
        if not isinstance(spec, WorkerSpec):
            spec = WorkerSpec(spec)
        self.spec = spec.validate()
        self.workers = int(workers)
        self.engine_config = {
            "driver_config": driver_config,
            "timing": timing,
            "locator": locator,
            "failure": failure,
            "retry": retry,
        }
        pickle.dumps(self.engine_config)  # fail fast on unpicklable policy
        self.trace_timeout = trace_timeout
        self.poll_interval = poll_interval
        self.drain_timeout = drain_timeout
        self._context = context if context is not None else _default_context()

    # -- lifecycle ----------------------------------------------------------

    def run(self, tasks, tracing=False):
        """Replay every ``(label, trace_text)`` task; returns
        ``(outcomes, dropped_events)`` with outcomes in input order."""
        tasks = list(tasks)
        outcomes = [PoolOutcome(index, label)
                    for index, (label, _) in enumerate(tasks)]
        done = [False] * len(tasks)
        if not tasks:
            return outcomes, 0
        ctx = self._context
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        current = ctx.Array("i", [-1] * self.workers)
        for index, (_, trace_text) in enumerate(tasks):
            task_queue.put((index, trace_text))
        state = {
            "handles": {},        # slot -> _WorkerHandle
            "next_worker_id": 0,
            "requeued": set(),    # task indexes already given a 2nd try
            "dropped": 0,
            "task_texts": [trace_text for _, trace_text in tasks],
        }
        tracing = bool(tracing)

        def spawn(slot):
            self._spawn(slot, state, task_queue, result_queue, current,
                        tracing)

        for slot in range(min(self.workers, len(tasks))):
            spawn(slot)
        try:
            while not all(done):
                self._pump(result_queue, outcomes, done, state, current)
                self._reap(outcomes, done, state, task_queue, current, spawn)
            self._drain(task_queue, result_queue, state)
        finally:
            self._shutdown(state, task_queue, result_queue)
        return outcomes, state["dropped"]

    def _spawn(self, slot, state, task_queue, result_queue, current, tracing):
        worker_id = state["next_worker_id"]
        state["next_worker_id"] += 1
        current[slot] = -1
        process = self._context.Process(
            target=_worker_main,
            args=(slot, worker_id, self.spec, self.engine_config,
                  task_queue, result_queue, current, tracing),
            daemon=True)
        process.start()
        state["handles"][slot] = _WorkerHandle(slot, worker_id, process)

    # -- event handling -----------------------------------------------------

    def _pump(self, result_queue, outcomes, done, state, current):
        """Drain every queued result message (waits up to one poll)."""
        block = True
        while True:
            try:
                message = result_queue.get(
                    timeout=self.poll_interval if block else 0)
            except queue_module.Empty:
                return
            block = False
            kind, worker_id, payload = message[0], message[1], message[2:]
            if kind == "done":
                state["dropped"] += payload[0].get("dropped", 0)
                for handle in state["handles"].values():
                    if handle.worker_id == worker_id:
                        handle.finished = True
                continue
            index = payload[0]
            if done[index]:
                continue  # a stale duplicate (e.g. the re-queued attempt won)
            outcome = outcomes[index]
            outcome.worker_id = worker_id
            if kind == "result":
                body = payload[1]
                outcome.report = body["report"]
                outcome.events = body.get("events")
                outcome.metadata = body.get("metadata")
            else:
                outcome.error = payload[1]
                outcome.error_class = (payload[2] if len(payload) > 2
                                       else "WorkerError")
            done[index] = True

    def _reap(self, outcomes, done, state, task_queue, current, spawn):
        """Contain dead workers and over-deadline traces; keep pool full."""
        now = time.monotonic()
        for slot, handle in list(state["handles"].items()):
            inflight = current[slot]
            if inflight != handle.inflight_index:
                handle.inflight_index = inflight
                handle.inflight_since = now if inflight >= 0 else None
            alive = handle.process.is_alive()
            if alive and handle.inflight_since is not None \
                    and self.trace_timeout is not None \
                    and now - handle.inflight_since > self.trace_timeout:
                # Kill the stuck worker; its trace gets one more chance.
                handle.process.terminate()
                handle.process.join(self.drain_timeout)
                self._handle_casualty(handle, current, outcomes, done, state,
                                      task_queue,
                                      "trace exceeded the %.3gs per-trace "
                                      "timeout" % self.trace_timeout,
                                      requeue=True,
                                      error_class="TimeoutError")
                alive = False
            elif not alive and not handle.finished:
                self._handle_casualty(handle, current, outcomes, done, state,
                                      task_queue,
                                      "worker process died (exit code %s)"
                                      % handle.process.exitcode,
                                      requeue=False,
                                      error_class="WorkerCrashError")
            if not alive:
                del state["handles"][slot]
                if not all(done):
                    spawn(slot)

    def _handle_casualty(self, handle, current, outcomes, done, state,
                         task_queue, reason, requeue, error_class):
        # The worker is dead by now, so its shared-memory slot is the
        # authoritative record of what it had in flight (a result put
        # just before death may still land; _pump wins that race because
        # completed outcomes are never overwritten here).
        index = current[handle.slot]
        if index < 0 or done[index]:
            return
        outcome = outcomes[index]
        outcome.worker_id = handle.worker_id
        if requeue and index not in state["requeued"]:
            state["requeued"].add(index)
            outcome.attempts += 1
            task_queue.put((index, state["task_texts"][index]))
            return
        outcome.error = reason
        outcome.error_class = error_class
        done[index] = True

    # -- shutdown -----------------------------------------------------------

    def _drain(self, task_queue, result_queue, state):
        """All traces accounted for: retire workers, collect drop counts."""
        live = [h for h in state["handles"].values()
                if h.process.is_alive() and not h.finished]
        for _ in live:
            task_queue.put(None)
        deadline = time.monotonic() + self.drain_timeout
        while any(not h.finished for h in live) \
                and time.monotonic() < deadline:
            self._collect_done(result_queue, state, live)
        for handle in live:
            handle.process.join(max(0.0, deadline - time.monotonic()))

    def _collect_done(self, result_queue, state, live):
        try:
            message = result_queue.get(timeout=self.poll_interval)
        except queue_module.Empty:
            return
        if message[0] != "done":
            return  # late duplicate from a re-queued task; drop it
        state["dropped"] += message[2].get("dropped", 0)
        for handle in live:
            if handle.worker_id == message[1]:
                handle.finished = True

    def _shutdown(self, state, task_queue, result_queue):
        for handle in state["handles"].values():
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in state["handles"].values():
            handle.process.join(self.drain_timeout)
        for q in (task_queue, result_queue):
            try:
                while True:
                    q.get_nowait()
            except (queue_module.Empty, OSError):
                pass
            q.close()
            q.cancel_join_thread()


def _default_context():
    """Prefer ``fork`` (cheap, inherits registered builders); fall back
    to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()
