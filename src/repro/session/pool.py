"""Multiprocess batch replay: the supervised warm worker-pool backend.

Once single-session replay is fast, the next multiplier is running many
replays at once — every session in a batch is fully isolated by
construction (fresh browser per trace), so a batch is embarrassingly
parallel. The first-generation pool proved the containment story but
lost to serial replay on throughput: it spawned processes per batch,
paid one queue round-trip per trace, and shipped every report as a
recursively-pickled dict. This pool keeps the containment semantics and
deletes the overhead:

- **persistent warm workers** — :meth:`WorkerPool.start` spawns the
  workers once; they build their browser factory on first use and then
  serve *batches* (``run()`` may be called repeatedly on a live pool,
  so spawn and import cost amortize across a whole campaign). The pool
  is a context manager; :meth:`close` retires the workers.
- **chunked work-stealing** — tasks are enqueued as chunks (a head of
  large chunks, then a tail of size-1 chunks for load balance), so a
  worker pays one queue round-trip per chunk, not per trace, while the
  single-trace tail keeps the finish line even.
- **compact result shipping** — workers encode each report with
  :mod:`repro.session.wire` (string-interned, varint-packed binary)
  and the queue carries one flat ``bytes`` blob; the parent decodes
  once. Telemetry slices (tracing runs only) ride alongside as raw
  packed ring-buffer records plus the worker's string-intern tables
  (:meth:`~repro.telemetry.packed.PackedRingBuffer.wire_slice`).
- **blocking result drain** — the parent sleeps in
  ``multiprocessing.connection.wait`` on the result pipe plus every
  worker's death sentinel; an idle parent burns no CPU and still wakes
  instantly for results *and* crashes. Only live deadlines (per-trace
  timeout, heartbeat watch, respawn backoff, drain) force a polling
  cadence.

Containment and supervision (see :mod:`repro.session.supervisor`):

- a worker that dies mid-trace (segfault, ``os._exit``, OOM kill, an
  injected ``worker`` chaos kill) fails only its in-flight trace; the
  rest of its chunk re-queues untouched as singles;
- a trace that times out or loses its worker is re-queued **once**; a
  second timeout/crash on a *different* worker quarantines it with a
  diagnosis bundle (attempt history, commands completed at death, the
  worker's stderr tail, the active chaos ``(profile, seed)`` stamp)
  instead of burning workers forever — poison traces are data, not
  retries;
- worker kills escalate ``terminate() → join(kill_grace) → kill()``,
  so a SIGTERM-masking worker cannot wedge the reaper;
- respawns back off exponentially, and repeated deaths with no
  progress trip a circuit breaker that degrades the pool to in-process
  serial execution of the remainder (warning + ``pool.degraded``
  counter) — the batch still finishes;
- with ``heartbeat=N`` each worker posts liveness beats over the
  result pipe; a silent worker (SIGSTOP, wedged C call) is detected
  and contained even when no per-trace deadline is set;
- ``run(..., drain=flag)`` supports graceful drain: queued chunks are
  recalled, in-flight traces finish, and cancelled outcomes are
  reported as such so a journal-backed batch can resume them later.

The parent merges everything into one
:class:`~repro.session.batch.BatchReport` via
:meth:`~repro.session.batch.BatchReport.merge`; counter deltas sum
through :meth:`~repro.session.observers.PerfCountersObserver.merge`
(observer *instances* never cross processes), and telemetry slices
merge through :class:`~repro.telemetry.merge.TraceMerger`.
"""

import importlib
import multiprocessing
import os
import pickle
import queue as queue_module
import shutil
import tempfile
import time
import traceback
import warnings
from multiprocessing.connection import wait as _connection_wait

from repro import chaos, perf
from repro.session import wire
from repro.session.supervisor import (
    SupervisorPolicy,
    WorkerSupervisor,
    start_heartbeat,
    tail_text,
    throttle_seconds,
)
from repro.telemetry.events import DEFAULT_BUFFER_SIZE

#: Error classes eligible for quarantine: the trace took its worker
#: down (or past a deadline) twice — a worker-side Python exception is
#: deterministic app behavior, not poison.
QUARANTINE_CLASSES = ("TimeoutError", "WorkerCrashError", "WorkerHangError")

#: Builders registered under a plain name for WorkerSpec resolution.
_factory_builders = {}


def register_factory(name, builder=None):
    """Register ``builder`` under ``name`` for :class:`WorkerSpec` use.

    Usable directly or as a decorator::

        @register_factory("sites")
        def sites_factory(): ...

    Registration is per-process module state: under the default
    ``fork`` start method workers inherit it, but under ``spawn`` the
    registering module must be imported in the child too — prefer
    dotted-path references for specs that must survive ``spawn``.
    """
    if builder is None:
        def decorator(function):
            _factory_builders[name] = function
            return function
        return decorator
    _factory_builders[name] = builder
    return builder


def resolve_factory(reference):
    """Resolve a factory reference to a callable.

    Accepts a registered builder name, a dotted path
    (``"package.module:attribute"`` or ``"package.module.attribute"``),
    or a callable (returned unchanged).
    """
    if callable(reference):
        return reference
    if not isinstance(reference, str):
        raise TypeError("factory reference must be a callable or str, "
                        "got %r" % (reference,))
    if reference in _factory_builders:
        return _factory_builders[reference]
    if ":" in reference:
        module_name, _, attribute = reference.partition(":")
    elif "." in reference:
        module_name, _, attribute = reference.rpartition(".")
    else:
        raise ValueError(
            "unknown factory %r: not a registered builder, and not a "
            "dotted 'module:attr' path" % reference)
    module = importlib.import_module(module_name)
    try:
        target = getattr(module, attribute)
    except AttributeError:
        raise ValueError("module %r has no attribute %r"
                         % (module_name, attribute))
    if not callable(target):
        raise TypeError("factory reference %r resolves to a non-callable "
                        "%r" % (reference, target))
    return target


class WorkerSpec:
    """A picklable recipe for a worker's browser factory.

    ``factory`` is a callable (a module-level function — lambdas and
    closures cannot be pickled) or a string reference resolvable by
    :func:`resolve_factory`. With ``factory_args``/``factory_kwargs``
    the resolved callable is treated as a *builder*: it is invoked once
    per worker with those arguments and must return the per-session
    browser factory. Without them, the resolved callable *is* the
    factory.
    """

    def __init__(self, factory, factory_args=(), factory_kwargs=None,
                 trace_buffer_size=DEFAULT_BUFFER_SIZE):
        self.factory = factory
        self.factory_args = tuple(factory_args)
        self.factory_kwargs = dict(factory_kwargs or {})
        #: Ring-buffer capacity of each worker's private tracer.
        self.trace_buffer_size = trace_buffer_size

    def make_factory(self):
        """Resolve and (if a builder) apply the recipe; in-process too."""
        target = resolve_factory(self.factory)
        if self.factory_args or self.factory_kwargs:
            return target(*self.factory_args, **self.factory_kwargs)
        return target

    def validate(self):
        """Fail fast in the parent: resolvable reference, picklable spec."""
        if isinstance(self.factory, str):
            resolve_factory(self.factory)
        try:
            pickle.dumps(self)
        except Exception as error:
            raise ValueError(
                "WorkerSpec is not picklable (%s); worker processes need a "
                "module-level factory function or a string reference, not "
                "a lambda or closure" % error)
        return self

    def __repr__(self):
        return "WorkerSpec(%r)" % (self.factory,)


class PoolOutcome:
    """One trace's result as it came back over the result queue."""

    __slots__ = ("index", "label", "report", "events", "metadata",
                 "error", "error_class", "worker_id", "attempts",
                 "quarantined", "cancelled")

    def __init__(self, index, label):
        self.index = index
        self.label = label
        #: Portable :class:`ReplayReport` dict, or None on worker failure.
        self.report = None
        #: Telemetry event dicts for this session (tracing runs only).
        self.events = None
        #: The worker registry's track-naming metadata event dicts.
        self.metadata = None
        #: Worker-side traceback / containment reason when the trace
        #: never produced a report.
        self.error = None
        #: Discriminates *how* the trace failed: ``"TimeoutError"`` for a
        #: per-trace deadline kill, ``"WorkerCrashError"`` for a dead
        #: worker process, ``"WorkerHangError"`` for a lost heartbeat,
        #: or the worker-side exception class name.
        self.error_class = None
        self.worker_id = None
        self.attempts = 1
        #: Quarantine diagnosis bundle (dict) when the trace killed two
        #: different workers; None otherwise.
        self.quarantined = None
        #: True when a graceful drain recalled the trace before it ran.
        self.cancelled = False

    @property
    def ok(self):
        return self.report is not None

    def __repr__(self):
        state = ("ok" if self.ok else
                 "cancelled" if self.cancelled else
                 "quarantined" if self.quarantined else "failed")
        return "PoolOutcome(%d, %r, %s)" % (self.index, self.label, state)


def plan_chunks(count, workers, chunk_size=None):
    """Split task indexes ``0..count-1`` into dispatch chunks.

    The head of the batch goes out in large chunks (one queue round-trip
    amortized over many traces); the last ~``2 * workers`` traces go out
    as size-1 chunks so the batch's finish line stays level — a worker
    stuck behind a big final chunk would otherwise idle the rest of the
    pool. ``chunk_size`` overrides the computed head-chunk size.
    """
    if count <= 0:
        return []
    workers = max(1, workers)
    tail = min(count, workers * 2)
    head = count - tail
    if chunk_size is None:
        # Aim for ~2 head chunks per worker so dynamic stealing can
        # still rebalance, without one round-trip per trace.
        chunk_size = max(1, -(-head // (workers * 2)))
    chunks = []
    position = 0
    while position < head:
        chunks.append(list(range(position, min(position + chunk_size, head))))
        position = min(position + chunk_size, head)
    for index in range(head, count):
        chunks.append([index])
    return chunks


# -- worker side --------------------------------------------------------------


def _replay_task(factory, engine_config, trace_text, tracer, tape=None,
                 label=None, observers=None):
    """Replay one trace on a fresh browser; returns a portable payload."""
    from repro.core.trace import WarrTrace
    from repro.session.engine import SessionEngine

    trace = WarrTrace.from_text(trace_text)
    browser = factory()
    # Tape modes cross the process boundary as a picklable TapeConfig;
    # each worker attaches it to its own browser's network (playback is
    # what makes pooled batch replay hermetic — no app-server state).
    tape_session = (tape.attach(browser.network, label)
                    if tape is not None else None)
    mark = None
    if tracer is not None:
        # Virtual timestamps come from this session's own clock.
        tracer.clock = browser.clock
        mark = tracer.mark()
    try:
        engine = SessionEngine(browser, observers=observers,
                               **engine_config)
        report = engine.run(trace)
    finally:
        if tracer is not None:
            tracer.clock = None
        if tape_session is not None:
            tape_session.finish()
    payload = {"report": report.to_dict()}
    if tracer is not None:
        # Packed records + intern tables, not per-event dicts: the
        # parent-side TraceMerger decodes and remaps the slice.
        payload["events"] = tracer.wire_slice(mark)
        payload["metadata"] = [event.to_dict()
                               for event in tracer.registry.metadata_events]
    return payload


class _ProgressObserver:
    """Mirrors per-trace command completion into shared memory.

    The dying worker can't tell the parent how far it got; this
    observer can — it bumps the worker's shared progress slot after
    every finished command, so the quarantine diagnosis bundle carries
    an honest "N commands completed" checkpoint even for a SIGKILL.
    """

    __slots__ = ("progress", "slot")

    def __init__(self, progress, slot):
        self.progress = progress
        self.slot = slot

    def on_event(self, event):
        if event.kind == "command-finished":
            self.progress[self.slot] += 1


def _farm_kill_stream(worker_id):
    """The worker's private chaos stream for farm-level kills.

    Returns ``(rng, rate)`` — or ``(None, 0)`` when no injector with a
    live ``worker`` layer is installed. Workers inherit the parent's
    injector under ``fork``, so ``chaos.active(profile, seed)`` around
    a pooled batch turns chaos on the farm itself; the stream is
    derived from ``(seed, worker_id)`` so each worker's kill schedule
    is deterministic and distinct.
    """
    injector = chaos.current()
    if injector is None:
        return None, 0.0
    rate = getattr(injector.profile, "worker_kill_rate", 0.0)
    if rate <= 0.0:
        return None, 0.0
    from repro.chaos.injector import _stable_child_seed
    from repro.util.rng import SeededRandom

    return SeededRandom(_stable_child_seed(
        injector.seed, "chaos.worker.%d" % worker_id)), rate


def _worker_main(slot, worker_id, spec, default_engine_config, task_queue,
                 result_queue, current, chunk_current, progress,
                 heartbeat=None, stderr_path=None):
    """Worker loop: serve chunks until the shutdown sentinel.

    The worker persists across batches: the browser factory is built
    once (first task) and reused, and a tracer is installed/uninstalled
    as batches toggle tracing. Every result ships as one wire-encoded
    blob plus the tracer's drop-count delta. ``stderr_path`` captures
    fd 2 (tracebacks, native aborts) for post-mortem diagnosis;
    ``heartbeat`` starts the liveness beat thread.
    """
    from repro import telemetry
    from repro.telemetry.tracer import Tracer, resolve_categories

    if stderr_path is not None:
        try:
            fd = os.open(stderr_path,
                         os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o600)
            os.dup2(fd, 2)
            os.close(fd)
        except OSError:
            pass
    # A fork inherits the parent's installed tracer (if any); the worker
    # records into its own private buffer instead. The chaos injector
    # is deliberately *kept*: chaos.active around a pooled batch means
    # chaos inside the workers too (including the farm's worker layer).
    telemetry.uninstall()
    beat_stop = None
    if heartbeat:
        beat_stop = start_heartbeat(result_queue, worker_id, heartbeat)
    kill_rng, kill_rate = _farm_kill_stream(worker_id)
    throttle = throttle_seconds()
    tracer = None
    tracer_cats = None
    factory = None
    dropped_sent = 0
    while True:
        task = task_queue.get()
        if task is None:
            break
        batch_id, chunk_id, tracing, engine_config, tape, items = task
        if engine_config is None:
            engine_config = default_engine_config
        chunk_current[slot] = chunk_id
        if tracing:
            # ``tracing`` is True (all categories) or a category spec;
            # a batch with a different spec gets a fresh tracer.
            cats = None if tracing is True else resolve_categories(tracing)
            if tracer is not None and cats != tracer_cats:
                telemetry.uninstall()
                tracer = None
                dropped_sent = 0
            if tracer is None:
                tracer = Tracer(buffer_size=spec.trace_buffer_size,
                                categories=cats)
                tracer_cats = cats
                telemetry.install(tracer)
        elif tracer is not None:
            telemetry.uninstall()
            tracer = None
            dropped_sent = 0
        for index, label, trace_text in items:
            # Shared-memory in-flight marker: written *before* any user
            # code runs so the parent can attribute a crash even when
            # the dying process never flushes a message.
            current[slot] = index
            progress[slot] = 0
            # Farm chaos: a live ``worker`` layer may kill this process
            # mid-chunk, exactly like an OOM kill would — containment
            # and the journal must absorb it.
            if kill_rng is not None and kill_rng.random() < kill_rate:
                # Flush results already handed to the queue's feeder
                # thread before dying: the simulated kill means "this
                # process dies between traces", not "the pipe eats
                # finished work in transit".
                result_queue.close()
                result_queue.join_thread()
                os._exit(137)
            if throttle:
                time.sleep(throttle)
            try:
                if factory is None:
                    factory = spec.make_factory()
                payload = _replay_task(
                    factory, engine_config, trace_text, tracer, tape=tape,
                    label=label,
                    observers=[_ProgressObserver(progress, slot)])
                blob = wire.encode_report(payload["report"])
                dropped = 0
                if tracer is not None:
                    dropped = tracer.buffer.dropped - dropped_sent
                    dropped_sent = tracer.buffer.dropped
                message = ("result", batch_id, worker_id, index, blob,
                           payload.get("events"), payload.get("metadata"),
                           dropped)
            except BaseException as exc:
                message = ("error", batch_id, worker_id, index,
                           traceback.format_exc(), type(exc).__name__)
            result_queue.put(message)
            current[slot] = -1
        chunk_current[slot] = -1
    if beat_stop is not None:
        beat_stop.set()
    result_queue.put(("bye", -1, worker_id))


# -- parent side --------------------------------------------------------------


class _WorkerHandle:
    """Parent-side view of one worker slot."""

    __slots__ = ("slot", "worker_id", "process", "inflight_index",
                 "inflight_since", "finished", "last_beat", "stderr_path",
                 "chunks_seen")

    def __init__(self, slot, worker_id, process, stderr_path=None):
        self.slot = slot
        self.worker_id = worker_id
        self.process = process
        self.inflight_index = -1
        self.inflight_since = None
        self.finished = False
        #: Last proof of life (spawn, heartbeat, or any message).
        self.last_beat = time.monotonic()
        self.stderr_path = stderr_path
        #: Every chunk id this worker was observed holding — the
        #: casualty sweep requeues unfinished work from *all* of them,
        #: since a result enqueued just before death may never have
        #: made it out of the dying process's outbox.
        self.chunks_seen = set()


class _BatchState:
    """Book-keeping for one ``run()`` call."""

    __slots__ = ("batch_id", "tasks", "outcomes", "done", "requeued",
                 "dropped", "chunks", "cancelled", "failed_on")

    def __init__(self, batch_id, tasks):
        self.batch_id = batch_id
        self.tasks = tasks
        self.outcomes = [PoolOutcome(index, label)
                         for index, (label, _) in enumerate(tasks)]
        self.done = [False] * len(tasks)
        self.requeued = set()   # task indexes already given a 2nd try
        self.dropped = 0
        self.chunks = {}        # chunk_id -> [task indexes]
        self.cancelled = set()  # task indexes recalled by a drain
        #: index -> (worker_id, error_class, reason) of the first
        #: containment failure — the quarantine decision needs to know
        #: whether the second failure hit a *different* worker.
        self.failed_on = {}

    @property
    def complete(self):
        return all(done or index in self.cancelled
                   for index, done in enumerate(self.done))


class WorkerPool:
    """Replays traces across N persistent, supervised worker processes.

    ``spec`` describes the browser factory; the engine policy objects
    (all picklable strategy objects) configure every worker's
    :class:`~repro.session.engine.SessionEngine` exactly as the serial
    batch runner would. Workers spawn lazily on the first :meth:`run`
    (or eagerly via :meth:`start`) and persist until :meth:`close` —
    use the pool as a context manager, or let a
    :class:`~repro.session.batch.BatchRunner` own an ephemeral one.

    Supervision knobs: ``kill_grace`` bounds the SIGTERM→SIGKILL
    escalation, ``heartbeat`` (seconds) turns on worker liveness beats
    with ``hang_timeout`` (default ``6 * heartbeat``) as the silence
    budget, and ``supervision`` (a
    :class:`~repro.session.supervisor.SupervisorPolicy`) tunes respawn
    backoff and the degradation breaker.
    """

    def __init__(self, spec, workers, driver_config=None, timing=None,
                 locator=None, failure=None, retry=None, trace_timeout=None,
                 poll_interval=0.05, drain_timeout=10.0, context=None,
                 chunk_size=None, kill_grace=1.0, heartbeat=None,
                 hang_timeout=None, supervision=None):
        if workers < 1:
            raise ValueError("need at least one worker")
        if not isinstance(spec, WorkerSpec):
            spec = WorkerSpec(spec)
        self.spec = spec.validate()
        self.workers = int(workers)
        self.engine_config = {
            "driver_config": driver_config,
            "timing": timing,
            "locator": locator,
            "failure": failure,
            "retry": retry,
        }
        pickle.dumps(self.engine_config)  # fail fast on unpicklable policy
        self.trace_timeout = trace_timeout
        self.poll_interval = poll_interval
        self.drain_timeout = drain_timeout
        self.chunk_size = chunk_size
        self.kill_grace = kill_grace
        self.heartbeat = heartbeat
        self.hang_timeout = (hang_timeout if hang_timeout is not None
                             else (heartbeat * 6 if heartbeat else None))
        self._supervisor = WorkerSupervisor(
            supervision if isinstance(supervision, SupervisorPolicy)
            or supervision is None else SupervisorPolicy(**supervision))
        self._context = context if context is not None else _default_context()
        self._started = False
        self._closed = False
        self._handles = {}          # slot -> _WorkerHandle
        self._next_worker_id = 0
        self._next_batch_id = 0
        self._next_chunk_id = 0
        self._task_queue = None
        self._result_queue = None
        self._current = None        # shared: in-flight task index per slot
        self._chunk_current = None  # shared: in-flight chunk id per slot
        self._progress = None       # shared: commands finished per slot
        self._stderr_dir = None
        #: Observability: parent wakeups during result collection (the
        #: no-busy-wait regression test pins this down), plus the
        #: supervision ledger — respawns, heartbeat hangs, quarantines,
        #: breaker degradations, and results abandoned at close().
        self.stats = {"wakeups": 0, "batches": 0, "abandoned": 0,
                      "respawns": 0, "hangs": 0, "quarantined": 0,
                      "degraded": 0}

    @property
    def supervisor(self):
        """The pool's death/respawn ledger (read-mostly for callers)."""
        return self._supervisor

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Spawn the worker processes (idempotent); returns self."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._started:
            return self
        ctx = self._context
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._current = ctx.Array("i", [-1] * self.workers)
        self._chunk_current = ctx.Array("i", [-1] * self.workers)
        self._progress = ctx.Array("i", [0] * self.workers)
        self._stderr_dir = tempfile.mkdtemp(prefix="repro-pool-")
        for slot in range(self.workers):
            self._spawn(slot)
        self._started = True
        return self

    def _spawn(self, slot):
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self._current[slot] = -1
        self._chunk_current[slot] = -1
        self._progress[slot] = 0
        stderr_path = (os.path.join(self._stderr_dir,
                                    "worker-%d.stderr" % worker_id)
                       if self._stderr_dir else None)
        process = self._context.Process(
            target=_worker_main,
            args=(slot, worker_id, self.spec, self.engine_config,
                  self._task_queue, self._result_queue, self._current,
                  self._chunk_current, self._progress, self.heartbeat,
                  stderr_path),
            daemon=True)
        process.start()
        self._handles[slot] = _WorkerHandle(slot, worker_id, process,
                                            stderr_path)

    def _replenish(self):
        """Refill slots whose worker died while the pool was idle (or
        was reaped at the very end of the previous batch)."""
        for slot in range(self.workers):
            handle = self._handles.get(slot)
            if handle is None or not handle.process.is_alive():
                if handle is not None:
                    handle.process.join(0)
                if slot not in self._supervisor.pending_slots():
                    self._spawn(slot)

    def _stop_process(self, process):
        """Escalating kill: ``terminate → join(grace) → kill``.

        A worker that masks SIGTERM (or is wedged in a signal-immune
        state) gets SIGKILL after ``kill_grace`` — the reaper must
        never block on a process's cooperation.
        """
        process.terminate()
        process.join(self.kill_grace)
        if process.is_alive():
            process.kill()
            process.join(self.drain_timeout)

    def close(self):
        """Retire the workers and release the queues (idempotent).

        Results that were already computed but never collected (a
        batch abandoned mid-drain) are counted in
        ``stats["abandoned"]`` rather than silently discarded.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        live = [h for h in self._handles.values() if h.process.is_alive()]
        for _ in live:
            self._task_queue.put(None)
        deadline = time.monotonic() + self.drain_timeout
        pending = {h.worker_id for h in live}
        while pending and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=self.poll_interval)
            except queue_module.Empty:
                pending = {wid for wid in pending
                           if any(h.worker_id == wid and h.process.is_alive()
                                  for h in self._handles.values())}
                continue
            if message[0] == "bye":
                pending.discard(message[2])
            elif message[0] in ("result", "error"):
                self.stats["abandoned"] += 1
        for handle in self._handles.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                self._stop_process(handle.process)
        for q in (self._task_queue, self._result_queue):
            try:
                while True:
                    message = q.get_nowait()
                    if q is self._result_queue \
                            and message and message[0] in ("result", "error"):
                        self.stats["abandoned"] += 1
            except (queue_module.Empty, OSError):
                pass
            q.close()
            q.cancel_join_thread()
        self._handles = {}
        if self._stderr_dir is not None:
            shutil.rmtree(self._stderr_dir, ignore_errors=True)
            self._stderr_dir = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, tb):
        self.close()
        return False

    # -- batch execution -----------------------------------------------------

    def run(self, tasks, tracing=False, engine_config=None, tape=None,
            on_outcome=None, drain=None):
        """Replay every ``(label, trace_text)`` task; returns
        ``(outcomes, dropped_events)`` with outcomes in input order.

        May be called repeatedly on a live pool — workers, their
        imported modules, and their browser factories stay warm between
        calls. ``engine_config`` overrides the pool's default policy set
        for this batch only (it is shipped with each chunk), and
        ``tape`` (a :class:`~repro.net.transport.TapeConfig`) puts every
        trace in this batch on a tape mode. ``tracing`` is False (off),
        True (every category), or a category spec for each worker's
        tracer. ``on_outcome`` is called once per task the moment its
        outcome is final (the crash-safe journaling hook). ``drain`` is
        a zero-argument flag: the first True recalls every queued chunk
        (cancelled outcomes), finishes what is in flight, and returns.
        """
        tasks = list(tasks)
        batch = _BatchState(self._next_batch_id, tasks)
        self._next_batch_id += 1
        if not tasks:
            return batch.outcomes, 0
        if engine_config is not None:
            pickle.dumps(engine_config)  # fail fast, like the default set
        if tape is not None:
            pickle.dumps(tape)
        self.start()
        self._replenish()
        self.stats["batches"] += 1
        if not tracing:
            tracing = False
        for indexes in plan_chunks(len(tasks), self.workers,
                                   self.chunk_size):
            self._dispatch(batch, indexes, tracing, engine_config, tape)
        draining = False
        while not batch.complete:
            if drain is not None and not draining and drain():
                draining = True
                self._cancel_pending(batch)
                continue  # re-check completion before sleeping
            self._spawn_due()
            self._wait_for_activity(drain)
            self._pump(batch, on_outcome)
            self._reap(batch, tracing, engine_config, tape, on_outcome)
            if self._supervisor.tripped and not batch.complete:
                self._pump(batch, on_outcome)  # collect stragglers first
                self._run_degraded(batch, engine_config, tape,
                                   on_outcome, drain)
        return batch.outcomes, batch.dropped

    def _dispatch(self, batch, indexes, tracing, engine_config, tape=None):
        """Enqueue one chunk of task indexes."""
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        batch.chunks[chunk_id] = list(indexes)
        items = [(index, batch.tasks[index][0], batch.tasks[index][1])
                 for index in indexes]
        self._task_queue.put((batch.batch_id, chunk_id, tracing,
                              engine_config, tape, items))

    def _cancel_pending(self, batch):
        """Recall every chunk still sitting in the task queue.

        Queued-but-unstarted traces become ``cancelled`` outcomes; a
        chunk a worker already pulled keeps running (its traces are
        in flight, and drain means *finish* in-flight work). The small
        steal race — a worker grabbing a chunk while we drain — is
        benign: its results arrive normally and un-cancel the trace.
        """
        while True:
            try:
                task = self._task_queue.get(timeout=0.05)
            except (queue_module.Empty, OSError):
                break
            batch_id, _, _, _, _, items = task
            if batch_id != batch.batch_id:
                continue  # stale chunk from a past batch: drop it
            for index, _, _ in items:
                if not batch.done[index]:
                    batch.cancelled.add(index)
                    batch.outcomes[index].cancelled = True

    # -- event handling -----------------------------------------------------

    def _spawn_due(self):
        """Spawn slots whose respawn backoff has elapsed."""
        for slot in self._supervisor.due_slots():
            if slot not in self._handles:
                self.stats["respawns"] += 1
                self._spawn(slot)

    def _wait_for_activity(self, drain=None):
        """Sleep until a result arrives or a worker dies.

        Blocks indefinitely when it safely can: the result pipe wakes
        us for every message and each worker's sentinel wakes us the
        instant that process exits, so no polling cadence is needed.
        Live deadlines force one: a per-trace timeout or heartbeat
        watch (silent overruns post to neither channel), a pending
        respawn backoff, or an armed drain flag (a signal handler sets
        a flag; it does not write to the pipe).
        """
        candidates = []
        if self.trace_timeout is not None or self.hang_timeout is not None \
                or drain is not None:
            candidates.append(self.poll_interval)
        due = self._supervisor.next_due_in()
        if due is not None:
            candidates.append(max(0.005, min(due, self.poll_interval)))
        timeout = min(candidates) if candidates else None
        reader = getattr(self._result_queue, "_reader", None)
        if reader is None:  # unexpected Queue implementation: poll
            time.sleep(timeout if timeout is not None else self.poll_interval)
            self.stats["wakeups"] += 1
            return
        # Every handle's sentinel, dead or alive: a worker that died
        # after _reap's liveness check but before this wait would
        # otherwise be silently excluded — and with no deadline armed
        # the parent would block forever on a pipe nobody writes to. A
        # dead sentinel is permanently ready, so the wait returns at
        # once and the next _reap buries the body.
        sentinels = [h.process.sentinel for h in self._handles.values()]
        _connection_wait([reader] + sentinels, timeout)
        self.stats["wakeups"] += 1

    def _note_beat(self, worker_id):
        for handle in self._handles.values():
            if handle.worker_id == worker_id:
                handle.last_beat = time.monotonic()
                return

    def _pump(self, batch, on_outcome=None):
        """Drain every queued result message without blocking."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return
            kind, batch_id = message[0], message[1]
            if kind == "heartbeat":
                self._note_beat(message[2])
                continue
            if kind == "bye":
                continue  # close() raced a worker retirement
            if batch_id != batch.batch_id:
                continue  # stale: a re-queued duplicate from a past batch
            worker_id, index = message[2], message[3]
            self._note_beat(worker_id)
            if batch.done[index]:
                continue  # the re-queued attempt already won
            outcome = batch.outcomes[index]
            outcome.worker_id = worker_id
            if kind == "result":
                outcome.report = wire.decode_report(message[4])
                outcome.events = message[5]
                outcome.metadata = message[6]
                batch.dropped += message[7]
            else:
                outcome.error = message[4]
                outcome.error_class = message[5] or "WorkerError"
            # A drain may have recalled this trace while its chunk was
            # being stolen; the real result wins over the cancellation.
            batch.cancelled.discard(index)
            outcome.cancelled = False
            batch.done[index] = True
            self._supervisor.record_completion()
            if on_outcome is not None:
                on_outcome(outcome)

    def _reap(self, batch, tracing, engine_config, tape=None,
              on_outcome=None):
        """Contain dead, hung, and over-deadline workers; keep pool full."""
        now = time.monotonic()
        for slot, handle in list(self._handles.items()):
            chunk = self._chunk_current[slot]
            if chunk >= 0:
                handle.chunks_seen.add(chunk)
            inflight = self._current[slot]
            if inflight != handle.inflight_index:
                handle.inflight_index = inflight
                handle.inflight_since = now if inflight >= 0 else None
            alive = handle.process.is_alive()
            if alive and handle.inflight_since is not None \
                    and self.trace_timeout is not None \
                    and now - handle.inflight_since > self.trace_timeout:
                # Kill the stuck worker; its trace gets one more chance.
                self._stop_process(handle.process)
                self._handle_casualty(
                    handle, batch, tracing, engine_config, tape,
                    "trace exceeded the %.3gs per-trace timeout"
                    % self.trace_timeout,
                    requeue=True, error_class="TimeoutError",
                    on_outcome=on_outcome)
                alive = False
            elif alive and self.hang_timeout is not None \
                    and now - handle.last_beat > self.hang_timeout:
                # Distinct from the per-trace deadline: the *process*
                # went silent (SIGSTOP, wedged syscall) — the trace may
                # not even have started.
                self.stats["hangs"] += 1
                self._stop_process(handle.process)
                self._handle_casualty(
                    handle, batch, tracing, engine_config, tape,
                    "worker heartbeat lost for %.3gs" % self.hang_timeout,
                    requeue=True, error_class="WorkerHangError",
                    on_outcome=on_outcome)
                alive = False
            elif not alive and not handle.finished:
                self._handle_casualty(
                    handle, batch, tracing, engine_config, tape,
                    "worker process died (exit code %s)"
                    % handle.process.exitcode,
                    requeue=True, error_class="WorkerCrashError",
                    on_outcome=on_outcome)
            if not alive:
                del self._handles[slot]
                if not batch.complete:
                    self._supervisor.record_death(slot, now)

    def _handle_casualty(self, handle, batch, tracing, engine_config, tape,
                         reason, requeue, error_class, on_outcome=None):
        # The worker is dead by now, so its shared-memory slots are the
        # authoritative record of what it had in flight (a result put
        # just before death may still land; _pump wins that race because
        # completed outcomes are never overwritten here).
        index = self._current[handle.slot]
        chunk_id = self._chunk_current[handle.slot]
        handle.finished = True
        # Chunk-mates the dead worker never started (or whose results
        # died in its outbox) go back on the queue as singles — they
        # were not running, so they are not charged an attempt. The
        # sweep covers every chunk the worker was seen holding, not
        # just the last: a result enqueued right before death may be
        # stuck in the dead process's outbox even though the worker
        # had already moved on to the next chunk. (A late duplicate is
        # benign: completed outcomes are never overwritten.)
        handle.chunks_seen.add(chunk_id)
        survivors = {mate
                     for seen in handle.chunks_seen
                     for mate in batch.chunks.get(seen, ())
                     if mate != index and not batch.done[mate]
                     and mate not in batch.cancelled}
        for mate in sorted(survivors):
            self._dispatch(batch, [mate], tracing, engine_config, tape)
        if index < 0 or batch.done[index]:
            return
        outcome = batch.outcomes[index]
        outcome.worker_id = handle.worker_id
        if requeue and index not in batch.requeued:
            batch.requeued.add(index)
            batch.failed_on[index] = (handle.worker_id, error_class, reason)
            outcome.attempts += 1
            self._dispatch(batch, [index], tracing, engine_config, tape)
            return
        first = batch.failed_on.get(index)
        if first is not None and first[0] != handle.worker_id \
                and error_class in QUARANTINE_CLASSES \
                and first[1] in QUARANTINE_CLASSES:
            # Two containment failures on two different workers: this
            # trace is poison. Quarantine it with a diagnosis bundle
            # instead of charging the pool for it ever again.
            outcome.quarantined = self._diagnose(
                handle, batch, index, outcome, first, error_class, reason)
            self.stats["quarantined"] += 1
            perf.record("pool.quarantined", False)
        outcome.error = reason
        outcome.error_class = error_class
        batch.cancelled.discard(index)
        outcome.cancelled = False
        batch.done[index] = True
        if on_outcome is not None:
            on_outcome(outcome)

    def _diagnose(self, handle, batch, index, outcome, first, error_class,
                  reason):
        """The quarantine diagnosis bundle for a poison trace."""
        injector = chaos.current()
        return {
            "label": outcome.label,
            "index": index,
            "attempts": outcome.attempts,
            "workers": [first[0], handle.worker_id],
            "error_class": error_class,
            "reason": reason,
            "first_failure": {"worker": first[0], "error_class": first[1],
                              "reason": first[2]},
            #: The last checkpoint: commands the final attempt finished
            #: before its worker died (mirrored live via shared memory).
            "commands_completed": int(self._progress[handle.slot]),
            "stderr_tail": (tail_text(handle.stderr_path)
                            if handle.stderr_path else ""),
            "chaos": ({"profile": injector.profile.name,
                       "seed": injector.seed}
                      if injector is not None else None),
        }

    # -- degraded (in-process) execution -------------------------------------

    def _run_degraded(self, batch, engine_config, tape, on_outcome=None,
                      drain=None):
        """Breaker tripped: finish the batch in-process, serially.

        Workers died repeatedly with no completed trace in between —
        respawning further would burn processes for nothing. The
        remainder executes inline on a factory built in the parent
        (telemetry slices are not collected in this mode); a drain
        request still cancels anything not yet started.
        """
        warnings.warn(
            "worker pool degraded to in-process execution after %d "
            "consecutive worker deaths" % self._supervisor.consecutive_deaths,
            RuntimeWarning, stacklevel=2)
        perf.record("pool.degraded", False)
        self.stats["degraded"] += 1
        for slot, handle in list(self._handles.items()):
            if handle.process.is_alive():
                self._stop_process(handle.process)
            handle.finished = True
            del self._handles[slot]
        # Purge queued chunks so a future batch never sees stale work.
        while True:
            try:
                self._task_queue.get_nowait()
            except (queue_module.Empty, OSError):
                break
        config = engine_config if engine_config is not None \
            else self.engine_config
        factory = None
        for index, (label, trace_text) in enumerate(batch.tasks):
            if batch.done[index] or index in batch.cancelled:
                continue
            outcome = batch.outcomes[index]
            if drain is not None and drain():
                batch.cancelled.add(index)
                outcome.cancelled = True
                continue
            try:
                if factory is None:
                    factory = self.spec.make_factory()
                payload = _replay_task(factory, config, trace_text,
                                       None, tape=tape, label=label)
                outcome.report = payload["report"]
            except BaseException as exc:
                outcome.error = traceback.format_exc()
                outcome.error_class = type(exc).__name__
            outcome.worker_id = None
            batch.done[index] = True
            if on_outcome is not None:
                on_outcome(outcome)


def _default_context():
    """Prefer ``fork`` (cheap, inherits registered builders); fall back
    to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()
