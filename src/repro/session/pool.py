"""Multiprocess batch replay: the persistent warm worker-pool backend.

Once single-session replay is fast, the next multiplier is running many
replays at once — every session in a batch is fully isolated by
construction (fresh browser per trace), so a batch is embarrassingly
parallel. The first-generation pool proved the containment story but
lost to serial replay on throughput: it spawned processes per batch,
paid one queue round-trip per trace, and shipped every report as a
recursively-pickled dict. This pool keeps the containment semantics and
deletes the overhead:

- **persistent warm workers** — :meth:`WorkerPool.start` spawns the
  workers once; they build their browser factory on first use and then
  serve *batches* (``run()`` may be called repeatedly on a live pool,
  so spawn and import cost amortize across a whole campaign). The pool
  is a context manager; :meth:`close` retires the workers.
- **chunked work-stealing** — tasks are enqueued as chunks (a head of
  large chunks, then a tail of size-1 chunks for load balance), so a
  worker pays one queue round-trip per chunk, not per trace, while the
  single-trace tail keeps the finish line even.
- **compact result shipping** — workers encode each report with
  :mod:`repro.session.wire` (string-interned, varint-packed binary)
  and the queue carries one flat ``bytes`` blob; the parent decodes
  once. Telemetry slices (tracing runs only) ride alongside in the
  same spirit: raw packed ring-buffer records plus the worker's
  string-intern tables
  (:meth:`~repro.telemetry.packed.PackedRingBuffer.wire_slice`), one
  ``bytes`` chunk per session instead of one dict per event, decoded
  and pid-remapped by the parent's
  :class:`~repro.telemetry.merge.TraceMerger`.
- **blocking result drain** — the parent sleeps in
  ``multiprocessing.connection.wait`` on the result pipe plus every
  worker's death sentinel; an idle parent burns no CPU and still wakes
  instantly for results *and* crashes. Only a live per-trace deadline
  (``trace_timeout``) forces a polling cadence.

Containment is unchanged in spirit: a worker that dies mid-trace
(segfault, ``os._exit``, OOM kill) fails only its in-flight trace — the
rest of its chunk is re-queued untouched as singles and a replacement
worker spawns; with ``trace_timeout`` set, an over-deadline trace gets
its worker killed and is re-queued *once* (a transient stall deserves a
second chance; a deterministic hang does not).

The parent merges everything into one
:class:`~repro.session.batch.BatchReport` via
:meth:`~repro.session.batch.BatchReport.merge`; counter deltas sum
through :meth:`~repro.session.observers.PerfCountersObserver.merge`
(observer *instances* never cross processes), and telemetry slices
merge through :class:`~repro.telemetry.merge.TraceMerger`.
"""

import importlib
import multiprocessing
import pickle
import queue as queue_module
import time
import traceback
from multiprocessing.connection import wait as _connection_wait

from repro.session import wire
from repro.telemetry.events import DEFAULT_BUFFER_SIZE

#: Builders registered under a plain name for WorkerSpec resolution.
_factory_builders = {}


def register_factory(name, builder=None):
    """Register ``builder`` under ``name`` for :class:`WorkerSpec` use.

    Usable directly or as a decorator::

        @register_factory("sites")
        def sites_factory(): ...

    Registration is per-process module state: under the default
    ``fork`` start method workers inherit it, but under ``spawn`` the
    registering module must be imported in the child too — prefer
    dotted-path references for specs that must survive ``spawn``.
    """
    if builder is None:
        def decorator(function):
            _factory_builders[name] = function
            return function
        return decorator
    _factory_builders[name] = builder
    return builder


def resolve_factory(reference):
    """Resolve a factory reference to a callable.

    Accepts a registered builder name, a dotted path
    (``"package.module:attribute"`` or ``"package.module.attribute"``),
    or a callable (returned unchanged).
    """
    if callable(reference):
        return reference
    if not isinstance(reference, str):
        raise TypeError("factory reference must be a callable or str, "
                        "got %r" % (reference,))
    if reference in _factory_builders:
        return _factory_builders[reference]
    if ":" in reference:
        module_name, _, attribute = reference.partition(":")
    elif "." in reference:
        module_name, _, attribute = reference.rpartition(".")
    else:
        raise ValueError(
            "unknown factory %r: not a registered builder, and not a "
            "dotted 'module:attr' path" % reference)
    module = importlib.import_module(module_name)
    try:
        target = getattr(module, attribute)
    except AttributeError:
        raise ValueError("module %r has no attribute %r"
                         % (module_name, attribute))
    if not callable(target):
        raise TypeError("factory reference %r resolves to a non-callable "
                        "%r" % (reference, target))
    return target


class WorkerSpec:
    """A picklable recipe for a worker's browser factory.

    ``factory`` is a callable (a module-level function — lambdas and
    closures cannot be pickled) or a string reference resolvable by
    :func:`resolve_factory`. With ``factory_args``/``factory_kwargs``
    the resolved callable is treated as a *builder*: it is invoked once
    per worker with those arguments and must return the per-session
    browser factory. Without them, the resolved callable *is* the
    factory.
    """

    def __init__(self, factory, factory_args=(), factory_kwargs=None,
                 trace_buffer_size=DEFAULT_BUFFER_SIZE):
        self.factory = factory
        self.factory_args = tuple(factory_args)
        self.factory_kwargs = dict(factory_kwargs or {})
        #: Ring-buffer capacity of each worker's private tracer.
        self.trace_buffer_size = trace_buffer_size

    def make_factory(self):
        """Resolve and (if a builder) apply the recipe; in-process too."""
        target = resolve_factory(self.factory)
        if self.factory_args or self.factory_kwargs:
            return target(*self.factory_args, **self.factory_kwargs)
        return target

    def validate(self):
        """Fail fast in the parent: resolvable reference, picklable spec."""
        if isinstance(self.factory, str):
            resolve_factory(self.factory)
        try:
            pickle.dumps(self)
        except Exception as error:
            raise ValueError(
                "WorkerSpec is not picklable (%s); worker processes need a "
                "module-level factory function or a string reference, not "
                "a lambda or closure" % error)
        return self

    def __repr__(self):
        return "WorkerSpec(%r)" % (self.factory,)


class PoolOutcome:
    """One trace's result as it came back over the result queue."""

    __slots__ = ("index", "label", "report", "events", "metadata",
                 "error", "error_class", "worker_id", "attempts")

    def __init__(self, index, label):
        self.index = index
        self.label = label
        #: Portable :class:`ReplayReport` dict, or None on worker failure.
        self.report = None
        #: Telemetry event dicts for this session (tracing runs only).
        self.events = None
        #: The worker registry's track-naming metadata event dicts.
        self.metadata = None
        #: Worker-side traceback / containment reason when the trace
        #: never produced a report.
        self.error = None
        #: Discriminates *how* the trace failed: ``"TimeoutError"`` for a
        #: per-trace deadline kill, ``"WorkerCrashError"`` for a dead
        #: worker process, or the worker-side exception class name.
        self.error_class = None
        self.worker_id = None
        self.attempts = 1

    @property
    def ok(self):
        return self.report is not None

    def __repr__(self):
        return "PoolOutcome(%d, %r, %s)" % (
            self.index, self.label, "ok" if self.ok else "failed")


def plan_chunks(count, workers, chunk_size=None):
    """Split task indexes ``0..count-1`` into dispatch chunks.

    The head of the batch goes out in large chunks (one queue round-trip
    amortized over many traces); the last ~``2 * workers`` traces go out
    as size-1 chunks so the batch's finish line stays level — a worker
    stuck behind a big final chunk would otherwise idle the rest of the
    pool. ``chunk_size`` overrides the computed head-chunk size.
    """
    if count <= 0:
        return []
    workers = max(1, workers)
    tail = min(count, workers * 2)
    head = count - tail
    if chunk_size is None:
        # Aim for ~2 head chunks per worker so dynamic stealing can
        # still rebalance, without one round-trip per trace.
        chunk_size = max(1, -(-head // (workers * 2)))
    chunks = []
    position = 0
    while position < head:
        chunks.append(list(range(position, min(position + chunk_size, head))))
        position = min(position + chunk_size, head)
    for index in range(head, count):
        chunks.append([index])
    return chunks


# -- worker side --------------------------------------------------------------


def _replay_task(factory, engine_config, trace_text, tracer, tape=None,
                 label=None):
    """Replay one trace on a fresh browser; returns a portable payload."""
    from repro.core.trace import WarrTrace
    from repro.session.engine import SessionEngine

    trace = WarrTrace.from_text(trace_text)
    browser = factory()
    # Tape modes cross the process boundary as a picklable TapeConfig;
    # each worker attaches it to its own browser's network (playback is
    # what makes pooled batch replay hermetic — no app-server state).
    tape_session = (tape.attach(browser.network, label)
                    if tape is not None else None)
    mark = None
    if tracer is not None:
        # Virtual timestamps come from this session's own clock.
        tracer.clock = browser.clock
        mark = tracer.mark()
    try:
        engine = SessionEngine(browser, **engine_config)
        report = engine.run(trace)
    finally:
        if tracer is not None:
            tracer.clock = None
        if tape_session is not None:
            tape_session.finish()
    payload = {"report": report.to_dict()}
    if tracer is not None:
        # Packed records + intern tables, not per-event dicts: the
        # parent-side TraceMerger decodes and remaps the slice.
        payload["events"] = tracer.wire_slice(mark)
        payload["metadata"] = [event.to_dict()
                               for event in tracer.registry.metadata_events]
    return payload


def _worker_main(slot, worker_id, spec, default_engine_config, task_queue,
                 result_queue, current, chunk_current):
    """Worker loop: serve chunks until the shutdown sentinel.

    The worker persists across batches: the browser factory is built
    once (first task) and reused, and a tracer is installed/uninstalled
    as batches toggle tracing. Every result ships as one wire-encoded
    blob plus the tracer's drop-count delta.
    """
    from repro import telemetry
    from repro.telemetry.tracer import Tracer, resolve_categories

    # A fork inherits the parent's installed tracer (if any); the worker
    # records into its own private buffer instead.
    telemetry.uninstall()
    tracer = None
    tracer_cats = None
    factory = None
    dropped_sent = 0
    while True:
        task = task_queue.get()
        if task is None:
            break
        batch_id, chunk_id, tracing, engine_config, tape, items = task
        if engine_config is None:
            engine_config = default_engine_config
        chunk_current[slot] = chunk_id
        if tracing:
            # ``tracing`` is True (all categories) or a category spec;
            # a batch with a different spec gets a fresh tracer.
            cats = None if tracing is True else resolve_categories(tracing)
            if tracer is not None and cats != tracer_cats:
                telemetry.uninstall()
                tracer = None
                dropped_sent = 0
            if tracer is None:
                tracer = Tracer(buffer_size=spec.trace_buffer_size,
                                categories=cats)
                tracer_cats = cats
                telemetry.install(tracer)
        elif tracer is not None:
            telemetry.uninstall()
            tracer = None
            dropped_sent = 0
        for index, label, trace_text in items:
            # Shared-memory in-flight marker: written *before* any user
            # code runs so the parent can attribute a crash even when
            # the dying process never flushes a message.
            current[slot] = index
            try:
                if factory is None:
                    factory = spec.make_factory()
                payload = _replay_task(factory, engine_config, trace_text,
                                       tracer, tape=tape, label=label)
                blob = wire.encode_report(payload["report"])
                dropped = 0
                if tracer is not None:
                    dropped = tracer.buffer.dropped - dropped_sent
                    dropped_sent = tracer.buffer.dropped
                message = ("result", batch_id, worker_id, index, blob,
                           payload.get("events"), payload.get("metadata"),
                           dropped)
            except BaseException as exc:
                message = ("error", batch_id, worker_id, index,
                           traceback.format_exc(), type(exc).__name__)
            result_queue.put(message)
            current[slot] = -1
        chunk_current[slot] = -1
    result_queue.put(("bye", -1, worker_id))


# -- parent side --------------------------------------------------------------


class _WorkerHandle:
    """Parent-side view of one worker slot."""

    __slots__ = ("slot", "worker_id", "process", "inflight_index",
                 "inflight_since", "finished")

    def __init__(self, slot, worker_id, process):
        self.slot = slot
        self.worker_id = worker_id
        self.process = process
        self.inflight_index = -1
        self.inflight_since = None
        self.finished = False


class _BatchState:
    """Book-keeping for one ``run()`` call."""

    __slots__ = ("batch_id", "tasks", "outcomes", "done", "requeued",
                 "dropped", "chunks")

    def __init__(self, batch_id, tasks):
        self.batch_id = batch_id
        self.tasks = tasks
        self.outcomes = [PoolOutcome(index, label)
                         for index, (label, _) in enumerate(tasks)]
        self.done = [False] * len(tasks)
        self.requeued = set()   # task indexes already given a 2nd try
        self.dropped = 0
        self.chunks = {}        # chunk_id -> [task indexes]

    @property
    def complete(self):
        return all(self.done)


class WorkerPool:
    """Replays traces across N persistent worker processes.

    ``spec`` describes the browser factory; the engine policy objects
    (all picklable strategy objects) configure every worker's
    :class:`~repro.session.engine.SessionEngine` exactly as the serial
    batch runner would. Workers spawn lazily on the first :meth:`run`
    (or eagerly via :meth:`start`) and persist until :meth:`close` —
    use the pool as a context manager, or let a
    :class:`~repro.session.batch.BatchRunner` own an ephemeral one.
    """

    def __init__(self, spec, workers, driver_config=None, timing=None,
                 locator=None, failure=None, retry=None, trace_timeout=None,
                 poll_interval=0.05, drain_timeout=10.0, context=None,
                 chunk_size=None):
        if workers < 1:
            raise ValueError("need at least one worker")
        if not isinstance(spec, WorkerSpec):
            spec = WorkerSpec(spec)
        self.spec = spec.validate()
        self.workers = int(workers)
        self.engine_config = {
            "driver_config": driver_config,
            "timing": timing,
            "locator": locator,
            "failure": failure,
            "retry": retry,
        }
        pickle.dumps(self.engine_config)  # fail fast on unpicklable policy
        self.trace_timeout = trace_timeout
        self.poll_interval = poll_interval
        self.drain_timeout = drain_timeout
        self.chunk_size = chunk_size
        self._context = context if context is not None else _default_context()
        self._started = False
        self._closed = False
        self._handles = {}          # slot -> _WorkerHandle
        self._next_worker_id = 0
        self._next_batch_id = 0
        self._next_chunk_id = 0
        self._task_queue = None
        self._result_queue = None
        self._current = None        # shared: in-flight task index per slot
        self._chunk_current = None  # shared: in-flight chunk id per slot
        #: Observability: parent wakeups during result collection. The
        #: no-busy-wait regression test pins this down — an idle parent
        #: waiting on one slow trace must sleep, not poll.
        self.stats = {"wakeups": 0, "batches": 0}

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Spawn the worker processes (idempotent); returns self."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._started:
            return self
        ctx = self._context
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        self._current = ctx.Array("i", [-1] * self.workers)
        self._chunk_current = ctx.Array("i", [-1] * self.workers)
        for slot in range(self.workers):
            self._spawn(slot)
        self._started = True
        return self

    def _spawn(self, slot):
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self._current[slot] = -1
        self._chunk_current[slot] = -1
        process = self._context.Process(
            target=_worker_main,
            args=(slot, worker_id, self.spec, self.engine_config,
                  self._task_queue, self._result_queue, self._current,
                  self._chunk_current),
            daemon=True)
        process.start()
        self._handles[slot] = _WorkerHandle(slot, worker_id, process)

    def _replenish(self):
        """Refill slots whose worker died while the pool was idle (or
        was reaped at the very end of the previous batch)."""
        for slot in range(self.workers):
            handle = self._handles.get(slot)
            if handle is None or not handle.process.is_alive():
                if handle is not None:
                    handle.process.join(0)
                self._spawn(slot)

    def close(self):
        """Retire the workers and release the queues (idempotent)."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        live = [h for h in self._handles.values() if h.process.is_alive()]
        for _ in live:
            self._task_queue.put(None)
        deadline = time.monotonic() + self.drain_timeout
        pending = {h.worker_id for h in live}
        while pending and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=self.poll_interval)
            except queue_module.Empty:
                pending = {wid for wid in pending
                           if any(h.worker_id == wid and h.process.is_alive()
                                  for h in self._handles.values())}
                continue
            if message[0] == "bye":
                pending.discard(message[2])
        for handle in self._handles.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(self.drain_timeout)
        for q in (self._task_queue, self._result_queue):
            try:
                while True:
                    q.get_nowait()
            except (queue_module.Empty, OSError):
                pass
            q.close()
            q.cancel_join_thread()
        self._handles = {}

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, tb):
        self.close()
        return False

    # -- batch execution -----------------------------------------------------

    def run(self, tasks, tracing=False, engine_config=None, tape=None):
        """Replay every ``(label, trace_text)`` task; returns
        ``(outcomes, dropped_events)`` with outcomes in input order.

        May be called repeatedly on a live pool — workers, their
        imported modules, and their browser factories stay warm between
        calls. ``engine_config`` overrides the pool's default policy set
        for this batch only (it is shipped with each chunk), and
        ``tape`` (a :class:`~repro.net.transport.TapeConfig`) puts every
        trace in this batch on a tape mode — workers attach it to their
        own browser's network, labelled per trace. ``tracing`` is
        False (off), True (every category), or a category spec for
        each worker's tracer (anything
        :func:`~repro.telemetry.tracer.resolve_categories` accepts).
        """
        tasks = list(tasks)
        batch = _BatchState(self._next_batch_id, tasks)
        self._next_batch_id += 1
        if not tasks:
            return batch.outcomes, 0
        if engine_config is not None:
            pickle.dumps(engine_config)  # fail fast, like the default set
        if tape is not None:
            pickle.dumps(tape)
        self.start()
        self._replenish()
        self.stats["batches"] += 1
        if not tracing:
            tracing = False
        for indexes in plan_chunks(len(tasks), self.workers,
                                   self.chunk_size):
            self._dispatch(batch, indexes, tracing, engine_config, tape)
        while not batch.complete:
            self._wait_for_activity()
            self._pump(batch)
            self._reap(batch, tracing, engine_config, tape)
        return batch.outcomes, batch.dropped

    def _dispatch(self, batch, indexes, tracing, engine_config, tape=None):
        """Enqueue one chunk of task indexes."""
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        batch.chunks[chunk_id] = list(indexes)
        items = [(index, batch.tasks[index][0], batch.tasks[index][1])
                 for index in indexes]
        self._task_queue.put((batch.batch_id, chunk_id, tracing,
                              engine_config, tape, items))

    # -- event handling -----------------------------------------------------

    def _wait_for_activity(self):
        """Sleep until a result arrives or a worker dies.

        Blocks indefinitely when it safely can: the result pipe wakes
        us for every message and each worker's sentinel wakes us the
        instant that process exits, so no polling cadence is needed.
        Only a live per-trace deadline forces one (the parent must
        notice a *silent* overrun, which posts to neither).
        """
        reader = getattr(self._result_queue, "_reader", None)
        timeout = (self.poll_interval if self.trace_timeout is not None
                   else None)
        if reader is None:  # unexpected Queue implementation: poll
            timeout = self.poll_interval
            time.sleep(timeout)
            self.stats["wakeups"] += 1
            return
        sentinels = [h.process.sentinel for h in self._handles.values()
                     if h.process.is_alive()]
        _connection_wait([reader] + sentinels, timeout)
        self.stats["wakeups"] += 1

    def _pump(self, batch):
        """Drain every queued result message without blocking."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return
            kind, batch_id = message[0], message[1]
            if kind == "bye":
                continue  # close() raced a worker retirement
            if batch_id != batch.batch_id:
                continue  # stale: a re-queued duplicate from a past batch
            worker_id, index = message[2], message[3]
            if batch.done[index]:
                continue  # the re-queued attempt already won
            outcome = batch.outcomes[index]
            outcome.worker_id = worker_id
            if kind == "result":
                outcome.report = wire.decode_report(message[4])
                outcome.events = message[5]
                outcome.metadata = message[6]
                batch.dropped += message[7]
            else:
                outcome.error = message[4]
                outcome.error_class = message[5] or "WorkerError"
            batch.done[index] = True

    def _reap(self, batch, tracing, engine_config, tape=None):
        """Contain dead workers and over-deadline traces; keep pool full."""
        now = time.monotonic()
        for slot, handle in list(self._handles.items()):
            inflight = self._current[slot]
            if inflight != handle.inflight_index:
                handle.inflight_index = inflight
                handle.inflight_since = now if inflight >= 0 else None
            alive = handle.process.is_alive()
            if alive and handle.inflight_since is not None \
                    and self.trace_timeout is not None \
                    and now - handle.inflight_since > self.trace_timeout:
                # Kill the stuck worker; its trace gets one more chance.
                handle.process.terminate()
                handle.process.join(self.drain_timeout)
                self._handle_casualty(
                    handle, batch, tracing, engine_config, tape,
                    "trace exceeded the %.3gs per-trace timeout"
                    % self.trace_timeout,
                    requeue=True, error_class="TimeoutError")
                alive = False
            elif not alive and not handle.finished:
                self._handle_casualty(
                    handle, batch, tracing, engine_config, tape,
                    "worker process died (exit code %s)"
                    % handle.process.exitcode,
                    requeue=False, error_class="WorkerCrashError")
            if not alive:
                del self._handles[slot]
                if not batch.complete:
                    self._spawn(slot)

    def _handle_casualty(self, handle, batch, tracing, engine_config, tape,
                         reason, requeue, error_class):
        # The worker is dead by now, so its shared-memory slots are the
        # authoritative record of what it had in flight (a result put
        # just before death may still land; _pump wins that race because
        # completed outcomes are never overwritten here).
        index = self._current[handle.slot]
        chunk_id = self._chunk_current[handle.slot]
        handle.finished = True
        # Chunk-mates the dead worker never started (or whose results
        # died in its outbox) go back on the queue as singles — they
        # were not running, so they are not charged an attempt.
        survivors = [mate for mate in batch.chunks.get(chunk_id, ())
                     if mate != index and not batch.done[mate]]
        for mate in survivors:
            self._dispatch(batch, [mate], tracing, engine_config, tape)
        if index < 0 or batch.done[index]:
            return
        outcome = batch.outcomes[index]
        outcome.worker_id = handle.worker_id
        if requeue and index not in batch.requeued:
            batch.requeued.add(index)
            outcome.attempts += 1
            self._dispatch(batch, [index], tracing, engine_config, tape)
            return
        outcome.error = reason
        outcome.error_class = error_class
        batch.done[index] = True


def _default_context():
    """Prefer ``fork`` (cheap, inherits registered builders); fall back
    to the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()
