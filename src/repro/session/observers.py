"""Stock observers of the session event stream.

- :class:`ReportBuilder` assembles the :class:`ReplayReport` the engine
  returns — the report is a *consumer* of the event stream, not a data
  structure the engine mutates directly;
- :class:`PerfCountersObserver` aggregates fast-path cache activity
  across many sessions (the batch runner attaches one);
- :class:`EventLogObserver` records the raw stream, for tests and
  debugging.

Tool-specific observers live with their tools: WebErr's oracle adapter
in :mod:`repro.weberr.oracle`, AUsER's snapshotter in
:mod:`repro.auser.snapshot`, replay-fidelity scoring in
:mod:`repro.baselines.fidelity`.
"""

from repro.session.events import SessionObserver
from repro.session.report import ReplayReport


class ReportBuilder(SessionObserver):
    """Builds a :class:`ReplayReport` from the event stream."""

    def __init__(self, trace):
        self.report = ReplayReport(trace)

    def on_command_finished(self, event):
        self.report.results.append(event.result)

    def on_halted(self, event):
        self.report.halted = True
        self.report.halt_reason = event.detail
        self.report.halt_error = event.error

    def on_recovered(self, event):
        self.report.recoveries += 1

    def on_page_error(self, event):
        self.report.page_errors.append(event.data["error"])

    def on_perf_delta(self, event):
        self.report.perf_counters = event.data["counters"]

    def on_net_fidelity(self, event):
        self.report.net_fidelity = dict(event.data["counters"])

    def on_session_finished(self, event):
        self.report.final_url = event.data.get("final_url")


class PerfCountersObserver(SessionObserver):
    """Accumulates per-cache hit/miss totals across sessions.

    One instance aggregates *in-process* sessions only. Instances must
    never be shared across processes — the counters live in ordinary
    process memory, so a worker mutating a pickled copy would silently
    diverge from the parent's. The observer refuses to pickle; pooled
    batch replay instead ships each session's counter *summary* back to
    the parent and combines them with :meth:`merge`.
    """

    def __init__(self):
        #: {cache: {"hits": h, "misses": m}} summed over every session.
        self.totals = {}
        self.sessions = 0

    def on_perf_delta(self, event):
        self.sessions += 1
        for name, counts in event.data["counters"].items():
            bucket = self.totals.setdefault(name, {"hits": 0, "misses": 0})
            bucket["hits"] += counts["hits"]
            bucket["misses"] += counts["misses"]

    def summary(self):
        """{cache: {"hits", "misses", "hit_rate"}} over all sessions."""
        return self.merge([self.totals])

    @classmethod
    def merge(cls, summaries):
        """Combine counter summaries into one (the parent-side merge).

        ``summaries`` is an iterable of ``{cache: {"hits", "misses",
        ...}}`` mappings — per-session deltas, per-worker totals, or
        prior :meth:`merge`/:meth:`summary` outputs. Hits and misses
        sum per cache; ``hit_rate`` is recomputed over the combined
        totals (never averaged across shards).
        """
        totals = {}
        for summary in summaries:
            for name, counts in summary.items():
                bucket = totals.setdefault(name, {"hits": 0, "misses": 0})
                bucket["hits"] += counts["hits"]
                bucket["misses"] += counts["misses"]
        result = {}
        for name, counts in totals.items():
            total = counts["hits"] + counts["misses"]
            result[name] = {
                "hits": counts["hits"],
                "misses": counts["misses"],
                "hit_rate": counts["hits"] / total if total else None,
            }
        return result

    def __reduce__(self):
        raise TypeError(
            "PerfCountersObserver must not cross process boundaries: a "
            "pickled copy would accumulate counters invisible to the "
            "parent. Ship counter summaries instead and combine them "
            "with PerfCountersObserver.merge().")


class EventLogObserver(SessionObserver):
    """Keeps every event (optionally filtered by kind)."""

    def __init__(self, kinds=None):
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events = []

    def on_event(self, event):
        if self.kinds is None or event.kind in self.kinds:
            self.events.append(event)

    def kinds_seen(self):
        return [event.kind for event in self.events]
