"""Lightweight per-command replay checkpoints for crash recovery.

A replay's page state is (to the fidelity the substrate models) a pure
function of the last committed navigation plus the commands executed
since. A :class:`ReplayCheckpoint` tracks exactly that pair, so when a
renderer crashes mid-session the engine does not need a DOM snapshot:
it reloads the checkpoint URL and re-executes the checkpointed commands
(with fault injection suppressed) to rebuild the page, then retries the
command that crashed.

The session run advances the checkpoint itself: every successful
command either *commits* a new navigation (the URL changed, so the
command list resets — replaying the click that navigated is unnecessary
and wrong) or *appends* to the command list.
"""


class ReplayCheckpoint:
    """The resume point: last committed URL + commands executed since."""

    def __init__(self, url=None):
        self.url = url
        #: Commands to re-execute after reloading ``url``, in order.
        self.commands = []

    def committed(self, url):
        """A navigation committed: new baseline, empty command list."""
        self.url = url
        self.commands = []

    def executed(self, command):
        """A non-navigating command succeeded on the current page."""
        self.commands.append(command)

    def advance(self, command, current_url):
        """Record one successful command, detecting navigation by URL.

        ``current_url`` is the tab's URL after the command ran; when it
        differs from the checkpoint URL the command navigated, so the
        new page becomes the baseline.
        """
        if current_url is not None and current_url != self.url:
            self.committed(current_url)
        else:
            self.executed(command)

    @property
    def depth(self):
        """How many commands a recovery would replay."""
        return len(self.commands)

    def __repr__(self):
        return "ReplayCheckpoint(%r, +%d commands)" % (self.url, self.depth)
