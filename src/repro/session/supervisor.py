"""Worker supervision: heartbeats, respawn backoff, breaker, drain.

The worker pool's first containment story handled *one* dead worker
per trace; this layer makes the farm survive the failure modes a real
deployment sees:

- **heartbeats** — each worker runs a tiny daemon thread posting a
  heartbeat message over the existing result pipe. The parent tracks
  the last beat per worker, so a *process-level* freeze (SIGSTOP, a
  wedged C call, a deadlocked interpreter) is detected even when no
  per-trace deadline is configured — hang detection is a property of
  the worker, the per-trace deadline a property of the trace.
- **respawn backoff + circuit breaker** — a worker death schedules its
  slot's respawn after a capped-exponential delay (consecutive deaths
  back off; any completed trace resets the streak). When deaths keep
  coming with nothing completing in between, the breaker trips: the
  pool stops burning processes, warns, bumps the ``pool.degraded``
  perf counter, and degrades to in-process serial execution of the
  remaining traces — slower, but the batch still finishes and the
  journal stays consistent.
- **graceful drain** — :class:`GracefulDrain` converts SIGTERM/SIGINT
  into a drain *request*: admission stops, in-flight traces finish,
  the journal and telemetry flush, and the process exits nonzero with
  a resumable journal instead of dying mid-write.

Everything here is policy + book-keeping; the pool owns the processes
and queues and calls in at its decision points.
"""

import os
import signal
import threading
import time

from repro import perf

#: Env var (seconds) slowing every trace down in real time — soak/test
#: plumbing so signals and kills can land mid-run deterministically.
#: Honored by all three batch backends (serial, sharded, pooled).
THROTTLE_ENV = "REPRO_SOAK_THROTTLE"


def throttle_seconds():
    """Real seconds to sleep per trace (soak/test plumbing; 0 = off)."""
    try:
        return float(os.environ.get(THROTTLE_ENV, "") or 0.0)
    except ValueError:
        return 0.0


class SupervisorPolicy:
    """Tunables for worker respawn and the degradation breaker."""

    def __init__(self, backoff_base=0.05, backoff_cap=2.0,
                 breaker_deaths=6):
        if backoff_base < 0 or backoff_cap < backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if breaker_deaths < 1:
            raise ValueError("breaker_deaths must be >= 1")
        #: First-respawn delay; doubles per consecutive death.
        self.backoff_base = float(backoff_base)
        #: Ceiling on any single respawn delay.
        self.backoff_cap = float(backoff_cap)
        #: Consecutive deaths (no trace completed in between) that trip
        #: the breaker and degrade the pool to in-process execution.
        self.breaker_deaths = int(breaker_deaths)

    def backoff(self, consecutive_deaths):
        """Respawn delay after the N-th consecutive death (N >= 1)."""
        if consecutive_deaths <= 1:
            return self.backoff_base
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (consecutive_deaths - 1)))

    def __repr__(self):
        return ("SupervisorPolicy(base=%gs, cap=%gs, breaker=%d)"
                % (self.backoff_base, self.backoff_cap,
                   self.breaker_deaths))


class WorkerSupervisor:
    """Death accounting and respawn scheduling for one pool.

    The pool reports deaths and completions; the supervisor answers
    "when may this slot respawn?" and "has the breaker tripped?".
    """

    def __init__(self, policy=None):
        self.policy = policy if policy is not None else SupervisorPolicy()
        #: Worker deaths since the pool started (lifetime count).
        self.deaths = 0
        #: Deaths since the last completed trace (breaker input).
        self.consecutive_deaths = 0
        self.tripped = False
        #: slot -> monotonic time before which it must not respawn.
        self._respawn_at = {}

    def record_death(self, slot, now=None):
        """A worker died; schedule its slot's respawn with backoff.

        Returns True when this death tripped the circuit breaker (the
        pool should degrade instead of respawning).
        """
        now = time.monotonic() if now is None else now
        self.deaths += 1
        self.consecutive_deaths += 1
        perf.record("pool.respawn", False)
        if self.consecutive_deaths >= self.policy.breaker_deaths:
            self.tripped = True
            return True
        self._respawn_at[slot] = now + self.policy.backoff(
            self.consecutive_deaths)
        return False

    def record_completion(self):
        """A trace finished — workers are making progress again."""
        self.consecutive_deaths = 0

    def due_slots(self, now=None):
        """Slots whose backoff has elapsed (removed from the schedule)."""
        if self.tripped or not self._respawn_at:
            return []
        now = time.monotonic() if now is None else now
        due = [slot for slot, at in self._respawn_at.items() if at <= now]
        for slot in due:
            del self._respawn_at[slot]
        return due

    def pending_slots(self):
        """Slots still waiting out their backoff."""
        return list(self._respawn_at)

    def next_due_in(self, now=None):
        """Seconds until the nearest scheduled respawn, or None."""
        if self.tripped or not self._respawn_at:
            return None
        now = time.monotonic() if now is None else now
        return max(0.0, min(self._respawn_at.values()) - now)

    def __repr__(self):
        return ("WorkerSupervisor(deaths=%d, streak=%d%s)"
                % (self.deaths, self.consecutive_deaths,
                   ", TRIPPED" if self.tripped else ""))


# -- graceful drain -----------------------------------------------------------


class GracefulDrain:
    """SIGTERM/SIGINT as a drain request instead of sudden death.

    Used as a context manager around a batch run::

        with GracefulDrain() as drain:
            batch = runner.run(traces)
        if drain.requested:
            sys.exit(75)  # resumable: the journal holds the finishes

    The first signal sets the flag (the runner stops admission,
    finishes in-flight traces, flushes journal + telemetry); a second
    signal restores the default disposition, so an operator who really
    means it can still kill the process immediately.
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self, signals=SIGNALS):
        self.signals = tuple(signals)
        self._event = threading.Event()
        self._previous = {}

    @property
    def requested(self):
        return self._event.is_set()

    def __call__(self):
        """Drain-flag probe, passable anywhere a callable is expected."""
        return self._event.is_set()

    def request(self):
        """Trip the drain flag programmatically (tests, embedders)."""
        self._event.set()

    def _handler(self, signum, frame):
        self._event.set()
        # Second signal = immediate: restore default dispositions.
        for signum_, previous in self._previous.items():
            try:
                signal.signal(signum_, previous)
            except (ValueError, OSError):  # non-main thread / teardown
                pass

    def __enter__(self):
        for signum in self.signals:
            try:
                self._previous[signum] = signal.signal(signum, self._handler)
            except (ValueError, OSError):
                # Not the main thread (embedded use): stay programmatic.
                pass
        return self

    def __exit__(self, exc_type, exc_value, tb):
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous = {}
        return False


# -- worker-side heartbeat ----------------------------------------------------


def start_heartbeat(result_queue, worker_id, interval, stop_event=None):
    """Start the worker's heartbeat thread; returns the stop event.

    The thread posts ``("heartbeat", -1, worker_id)`` on the result
    queue every ``interval`` seconds until the event is set. It is a
    daemon thread, so a worker that exits abruptly never blocks on it —
    and its silence is exactly the hang signal the parent watches for.
    """
    stop = stop_event if stop_event is not None else threading.Event()

    def beat():
        while not stop.wait(interval):
            try:
                result_queue.put(("heartbeat", -1, worker_id))
            except (ValueError, OSError):
                return  # queue closed under us: the pool is retiring

    thread = threading.Thread(target=beat, name="pool-heartbeat",
                              daemon=True)
    thread.start()
    return stop


def tail_text(path, limit=2048):
    """The last ``limit`` bytes of a text file, decoded leniently.

    Used for the quarantine diagnosis bundle's worker-stderr tail;
    returns "" when the file is missing or empty.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.seek(max(0, size - limit))
            return handle.read().decode("utf-8", "replace")
    except OSError:
        return ""
