"""The session engine: one execution pipeline for every driving tool.

WaRR replay, WebErr's error-injection campaigns, AUsER's developer-side
reproductions, and the fidelity baselines all drive a browser the same
way: schedule a command on the replay timeline, locate its target
element, act on it, and observe what happened. :class:`SessionEngine`
owns that per-command pipeline once; each stage is configured by a
policy object (:mod:`repro.session.policies`) and every step is
narrated on a structured event stream (:mod:`repro.session.events`)
that observers subscribe to.

Two entry points:

- :meth:`SessionEngine.run` replays a whole trace and returns the
  observer-built :class:`~repro.session.report.ReplayReport`;
- :meth:`SessionEngine.start` returns a :class:`SessionRun` for callers
  that need to interleave their own observation between commands
  (WebErr's grammar inference snapshots the page after every step).
"""

from contextlib import nullcontext

from repro import chaos, perf, telemetry
from repro.session.checkpoint import ReplayCheckpoint
from repro.session.events import EventStream, SessionEvent
from repro.telemetry.tracks import SESSION_TRACK
from repro.session.observers import ReportBuilder
from repro.session.policies import (
    FailurePolicy,
    LocatorPolicy,
    RetryPolicy,
    TimingPolicy,
)
from repro.session.report import CommandResult
from repro.util.errors import (
    DriverError,
    ElementNotFoundError,
    NavigationError,
    NetworkError,
    RendererCrashError,
    ReplayError,
    ReplayHaltedError,
)


class SessionEngine:
    """Runs traces through the schedule → locate → act → observe pipeline.

    The engine holds only configuration (policies, driver config,
    standing observers); per-session state lives on the
    :class:`SessionRun`, so one engine can run many sessions — serially
    or, via the batch runner, across isolated browser instances.
    """

    def __init__(self, browser, driver_config=None, timing=None,
                 locator=None, failure=None, retry=None, observers=None):
        self.browser = browser
        self.driver_config = driver_config
        self.timing = timing if timing is not None else TimingPolicy.recorded()
        self.locator = locator if locator is not None else LocatorPolicy()
        self.failure = failure if failure is not None else FailurePolicy()
        #: Self-healing: RetryPolicy.none() preserves fail-fast behaviour.
        self.retry = retry if retry is not None else RetryPolicy.none()
        #: Standing observers, subscribed to every run's event stream.
        self.observers = list(observers or [])

    def add_observer(self, observer):
        self.observers.append(observer)
        return observer

    # -- driver wiring ------------------------------------------------------

    def new_driver(self):
        """A fresh WebDriver session configured by this engine's policies."""
        from repro.core.chromedriver import ChromeDriverConfig
        from repro.core.webdriver import WebDriver

        config = (self.driver_config if self.driver_config is not None
                  else ChromeDriverConfig.warr())
        return WebDriver(self.browser, config=config, locator=self.locator)

    def current_document(self):
        """The active page's document, or None before any page loaded.

        The engine is the one sanctioned reader of page state for its
        consumers: AUsER snapshots through this instead of reaching into
        tab/renderer internals.
        """
        tab = self.browser.active_tab
        if tab is None or tab.renderer is None:
            return None
        return tab.document

    # -- whole-trace execution ----------------------------------------------

    def run(self, trace, observers=()):
        """Replay ``trace`` from its start URL; returns a ReplayReport."""
        run = self.start(trace, observers=observers)
        if not run.halted:
            for command in trace:
                run.step(command)
                if run.stopped:
                    break
        return run.finish()

    def start(self, trace, observers=(), perf_scope=None):
        """Open a stepping session (navigates to the trace's start URL).

        With ``perf_scope`` (a :class:`repro.perf.Scope`) the run's
        PERF_DELTA reports the scope's ledger instead of a global
        snapshot diff — required when several sessions interleave in
        one process (the sharded runner activates the scope around
        every call it makes into this run).
        """
        run = SessionRun(self, trace, observers=observers,
                         perf_scope=perf_scope)
        run.begin()
        return run

    # -- per-command execution ----------------------------------------------

    def execute(self, driver, command, emit=None):
        """Run one command through locate → act; returns a CommandResult.

        Stateless with respect to the run: WebErr's legacy stepping
        interface calls this with its own driver. Raises
        :class:`ReplayHaltedError` when the driver has lost its active
        client and :class:`ReplayError` for unreplayable commands.
        """
        if emit is None:
            stream = EventStream(self.observers)
            emit = stream.emit
        if command.action == "switchframe":
            return self._execute_switch(driver, command, emit)
        if command.action not in ("click", "doubleclick", "type", "drag"):
            raise ReplayError("cannot replay command %r" % (command,))

        # -- locate stage ---------------------------------------------------
        try:
            location = self.locator.resolve(driver, command.xpath)
        except ReplayHaltedError:
            raise
        except ElementNotFoundError as error:
            return self._locate_fallback(driver, command, error, emit)
        except DriverError as error:
            return self._fail(command, error, emit)
        emit(SessionEvent(
            SessionEvent.RELAXED if location.relaxed else SessionEvent.LOCATED,
            command=command, detail=location.detail,
            data={"element": location.element}))

        # -- act stage ------------------------------------------------------
        # NavigationError/NetworkError join the catch set because an
        # action can trigger a navigation whose fetch fails — under
        # chaos that is a transient the retry loop must get to see as a
        # CommandResult, not an exception unwinding the session.
        try:
            self._act(location, command)
        except ReplayHaltedError:
            raise
        except (ElementNotFoundError, DriverError,
                NavigationError, NetworkError) as error:
            return self._fail(command, error, emit)
        emit(SessionEvent(SessionEvent.ACTED, command=command,
                          detail=location.detail))
        if location.relaxed:
            return CommandResult(command, CommandResult.RELAXED,
                                 detail=location.detail)
        return CommandResult(command, CommandResult.OK)

    def _locate_fallback(self, driver, command, error, emit):
        """Backup element identification: the recorded click position."""
        position = self.locator.fallback_position(command)
        if position is None:
            return self._fail(command, error, emit)
        try:
            driver.click_at(*position)
        except ReplayHaltedError:
            raise
        except Exception as fallback_error:
            return self._fail(command, fallback_error, emit)
        detail = "clicked at recorded (%d,%d)" % position
        emit(SessionEvent(SessionEvent.ACTED, command=command, detail=detail))
        return CommandResult(command, CommandResult.COORDINATE, detail=detail)

    @staticmethod
    def _act(location, command):
        client, element = location.client, location.element
        if command.action == "doubleclick":
            client.double_click(element)
        elif command.action == "click":
            client.click(element)
        elif command.action == "type":
            client.send_key(element, command.key, command.code)
        else:
            client.drag(element, command.dx, command.dy)

    def _execute_switch(self, driver, command, emit):
        try:
            if command.is_default:
                driver.switch_to_default()
            else:
                driver.switch_to_frame(command.xpath)
        except ReplayHaltedError:
            raise
        except (DriverError, ElementNotFoundError) as error:
            return self._fail(command, error, emit)
        emit(SessionEvent(SessionEvent.ACTED, command=command))
        return CommandResult(command, CommandResult.OK)

    @staticmethod
    def _fail(command, error, emit):
        emit(SessionEvent(SessionEvent.FAILED, command=command, error=error))
        return CommandResult(command, CommandResult.FAILED, error=error)


class SessionRun:
    """One session in flight: driver, timeline anchor, event stream.

    Use :meth:`step` to execute commands one at a time (the engine's
    ``run`` does exactly this in a loop), then :meth:`finish` to settle
    the page and close out the report.
    """

    def __init__(self, engine, trace, observers=(), perf_scope=None):
        self.engine = engine
        self.trace = trace
        self._perf_scope = perf_scope
        self.report_builder = ReportBuilder(trace)
        # The builder subscribes first so downstream observers (oracles,
        # snapshotters) see a fully assembled report on session-finished.
        # Every run also carries a TracingObserver — a no-op guard check
        # per event until telemetry tracing is enabled.
        from repro.telemetry.observer import TracingObserver

        self.stream = EventStream(
            [self.report_builder] + list(engine.observers) + list(observers)
            + [TracingObserver()])
        self.driver = None
        self.halted = False
        self.stopped = False
        self._navigation_failed = False
        self._anchor = 0.0
        #: ``[tracer, wants("session.phase")]`` — step() runs once per
        #: command and a tracer's category set is immutable, so the
        #: schedule-span decision is resolved once per installed tracer.
        self._wants_schedule = [None, False]
        self._error_base = 0
        self._perf_base = None
        self._net_base = None
        self._finished = False
        #: Crash-recovery resume point (last committed URL + commands).
        self.checkpoint = ReplayCheckpoint()
        self._backoff_seq = engine.retry.new_sequence()

    @property
    def report(self):
        return self.report_builder.report

    @property
    def browser(self):
        return self.engine.browser

    def begin(self):
        """Create the driver and navigate to the trace's start URL."""
        browser = self.browser
        self._error_base = len(browser.page_errors)
        self._perf_base = perf.snapshot()
        self._net_base = self._net_snapshot()
        self.driver = self.engine.new_driver()
        # Recording starts its timeline at begin(), i.e. just before the
        # initial navigation — anchor the replay timeline the same way.
        self._anchor = browser.clock.now()
        self.stream.emit(SessionEvent(
            SessionEvent.SESSION_STARTED,
            data={"trace": self.trace, "browser": browser,
                  "driver": self.driver}))
        # The initial navigation heals like any command: a transient
        # failure (e.g. an injected network fault) retries with backoff
        # instead of stranding the whole session before it starts.
        retry = self.engine.retry
        attempt = 1
        while True:
            try:
                self.driver.get(self.trace.start_url)
                break
            except Exception as error:
                if retry.should_retry(error, attempt):
                    self.stream.emit(SessionEvent(
                        SessionEvent.RETRYING, detail=str(error),
                        error=error, data={"attempt": attempt}))
                    self.driver.wait(self._backoff_seq.delay_ms(attempt))
                    attempt += 1
                    continue
                reason = "navigation to %r failed: %s" % (
                    self.trace.start_url, error)
                self._navigation_failed = True
                self.halted = True
                self.stopped = True
                self.stream.emit(SessionEvent(
                    SessionEvent.HALTED, detail=reason, error=error))
                return self
        self.checkpoint.committed(self.trace.start_url)
        self.stream.emit(SessionEvent(
            SessionEvent.NAVIGATED, detail=self.trace.start_url,
            data={"url": self.trace.start_url, "driver": self.driver}))
        return self

    def step(self, command):
        """Schedule and execute one command; returns its CommandResult.

        A driver halt (no active client left) is recorded on the report
        and marks the run halted; it is not re-raised, so stepping
        callers can keep iterating and simply observe ``self.halted``.
        """
        emit = self.stream.emit
        clock = self.browser.clock
        target = self.engine.timing.target(self._anchor, command)
        wait_ms = max(0.0, target - clock.now())
        tracer = telemetry.current()
        if tracer is not None:
            cache = self._wants_schedule
            if tracer is not cache[0]:
                cache[0] = tracer
                cache[1] = tracer.wants("session.phase")
        if tracer is None or not cache[1]:
            self.driver.wait(wait_ms)
        else:
            with tracer.span("session.schedule", track=SESSION_TRACK,
                             cat="session.phase",
                             args={"wait_ms": wait_ms, "due_vt_ms": target}):
                self.driver.wait(wait_ms)
        self._anchor = clock.now()
        emit(SessionEvent(SessionEvent.COMMAND_STARTED, command=command,
                          data={"due": target}))
        try:
            result = self._execute_healing(command, emit)
        except ReplayHaltedError as error:
            result = CommandResult(command, CommandResult.FAILED, error=error)
            emit(SessionEvent(SessionEvent.COMMAND_FINISHED, command=command,
                              result=result))
            self.halted = True
            self.stopped = True
            emit(SessionEvent(SessionEvent.HALTED, detail=str(error),
                              error=error))
            return result
        emit(SessionEvent(SessionEvent.COMMAND_FINISHED, command=command,
                          result=result))
        if result.succeeded:
            url = self.driver.tab.url if self.driver.has_session else None
            self.checkpoint.advance(command, url)
        decision = self.engine.failure.decide(result)
        if decision == FailurePolicy.STOP:
            self.stopped = True
        elif decision == FailurePolicy.HALT:
            self.halted = True
            self.stopped = True
            emit(SessionEvent(
                SessionEvent.HALTED,
                detail="command failed: %s" % command.to_line(),
                error=result.error))
        return result

    # -- self-healing -------------------------------------------------------

    def _execute_healing(self, command, emit):
        """Execute with the engine's RetryPolicy: retry transients,
        recover renderer crashes from the replay checkpoint.

        Backoff "sleeps" run through ``driver.wait`` so they advance
        only the virtual clock (timers and AJAX fire during them, as
        they would while a real client backs off).
        """
        retry = self.engine.retry
        attempt = 1
        while True:
            result = self.engine.execute(self.driver, command, emit=emit)
            result.retries = attempt - 1
            error = result.error
            if result.succeeded or error is None:
                return result
            if not retry.should_retry(error, attempt):
                return result
            if isinstance(error, RendererCrashError) and not retry.recover_crashes:
                return result
            emit(SessionEvent(SessionEvent.RETRYING, command=command,
                              detail=str(error), error=error,
                              data={"attempt": attempt}))
            if isinstance(error, RendererCrashError):
                self._recover_from_crash(error, emit)
            self.driver.wait(self._backoff_seq.delay_ms(attempt))
            attempt += 1

    def _recover_from_crash(self, error, emit):
        """Tab reload + checkpoint resume after a renderer crash.

        Fault injection is suppressed for the whole recovery pass: the
        reload and the checkpoint re-execution are repair work, not part
        of the replay under test, so they must neither fault nor consume
        the chaos schedule. Re-executed commands report to no observers
        (the session already recorded their first, successful run).
        """
        checkpoint = self.checkpoint
        emit(SessionEvent(
            SessionEvent.RECOVERING, detail=checkpoint.url or "",
            error=error,
            data={"url": checkpoint.url, "depth": checkpoint.depth}))
        injector = chaos.current()
        guard = injector.suppressed() if injector is not None else nullcontext()
        silent = EventStream([]).emit
        with guard:
            try:
                self.driver.get(checkpoint.url)
            except Exception as reload_error:
                raise ReplayHaltedError(
                    "recovery reload of %r failed: %s"
                    % (checkpoint.url, reload_error))
            for past in checkpoint.commands:
                try:
                    self.engine.execute(self.driver, past, emit=silent)
                except ReplayHaltedError:
                    raise
                except ReplayError:
                    # Best effort: the retried command's own outcome
                    # decides whether the session proceeds.
                    pass
        emit(SessionEvent(
            SessionEvent.RECOVERED,
            data={"url": checkpoint.url, "depth": checkpoint.depth}))

    def _net_snapshot(self):
        """The browser network's cumulative fidelity counters now.

        Deltas against this baseline (taken at :meth:`begin`) attribute
        wire trouble to *this* session even when many sessions share a
        process; browsers without a network report zeros.
        """
        network = getattr(self.browser, "network", None)
        return (getattr(network, "failed_fetch_count", 0),
                getattr(network, "timeout_count", 0),
                getattr(network, "tape_miss_count", 0))

    def _net_delta(self):
        base = self._net_base or (0, 0, 0)
        now = self._net_snapshot()
        return {"failed_fetches": now[0] - base[0],
                "timeouts": now[1] - base[1],
                "tape_misses": now[2] - base[2]}

    def finish(self):
        """Settle the page, collect errors and counters, close the run."""
        if self._finished:
            return self.report
        self._finished = True
        emit = self.stream.emit
        browser = self.browser
        if not self._navigation_failed:
            # Let in-flight work (XHRs fired by the last action, timers)
            # complete, as a user letting the page settle would.
            browser.event_loop.run_until_idle()
            for error in browser.page_errors[self._error_base:]:
                emit(SessionEvent(SessionEvent.PAGE_ERROR,
                                  data={"error": error}))
        counters = (self._perf_scope.counters()
                    if self._perf_scope is not None
                    else perf.delta(self._perf_base))
        emit(SessionEvent(SessionEvent.PERF_DELTA,
                          data={"counters": counters}))
        emit(SessionEvent(SessionEvent.NET_FIDELITY,
                          data={"counters": self._net_delta()}))
        final_url = None
        if not self._navigation_failed and self.driver.has_session:
            final_url = self.driver.tab.url
        emit(SessionEvent(
            SessionEvent.SESSION_FINISHED,
            data={"browser": browser, "driver": self.driver,
                  "final_url": final_url, "report": self.report}))
        return self.report

    def __repr__(self):
        return "SessionRun(%d commands, halted=%r)" % (
            len(self.trace), self.halted)
