"""Compact binary shipping of replay results across process boundaries.

Pool workers used to put each :meth:`ReplayReport.to_dict` on the
result queue as-is, paying a full recursive pickle of hundreds of tiny
dicts and strings per trace — measurable against traces that replay in
single-digit milliseconds. This module packs the same payload into one
flat ``bytes`` blob instead: the worker encodes once, the queue ships a
single buffer (pickling ``bytes`` is a length-prefixed memcpy), and the
parent decodes once.

Format (version tag ``WR2`` — ``WR1`` plus the report's network-fidelity
triple):

- **varints** — unsigned LEB128 for every integer (lengths, counts,
  refs, hit/miss totals), so small numbers cost one byte;
- **string interning** — every string in the payload (command lines,
  statuses, details, error types/messages, cache names) is stored once
  in a table and referenced by index; a batch of identical ``type``
  commands pays for the command text once. Reference ``0`` is the
  ``None`` sentinel, so optional strings need no presence flags;
- **counters as arrays** — perf counters ship as parallel
  name-ref/hits/misses/rate arrays rather than nested dicts; hit rates
  are carried as raw IEEE doubles so decoded floats are bit-identical
  to the encoder's.

:func:`decode_report` is the exact inverse of :func:`encode_report`:
``decode_report(encode_report(d)) == d`` for every dict
:meth:`ReplayReport.to_dict` can produce — the round-trip property the
wire tests pin down, and the reason the parent-side
:meth:`ReplayReport.from_dict` path needed no changes.
"""

import struct

#: Format tag; bump when the layout changes incompatibly.
MAGIC = b"WR2"

#: The net-fidelity counters, in wire order.
_NET_FIDELITY_KEYS = ("failed_fetches", "timeouts", "tape_misses")

#: CommandResult statuses packed as one byte; anything else ships as a
#: string reference after the ``_STATUS_OTHER`` marker.
_STATUSES = ("ok", "relaxed", "coordinate-fallback", "failed")
_STATUS_CODE = {status: code for code, status in enumerate(_STATUSES)}
_STATUS_OTHER = 0xFF

_DOUBLE = struct.Struct("<d")


class WireError(ValueError):
    """A blob that is not a well-formed WR1 payload."""


# -- primitives ---------------------------------------------------------------


def _write_varint(out, value):
    """Append ``value`` (non-negative int) as unsigned LEB128."""
    if value < 0:
        raise WireError("varint cannot encode negative value %r" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(blob, pos):
    result = 0
    shift = 0
    while True:
        if pos >= len(blob):
            raise WireError("truncated varint")
        byte = blob[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise WireError("varint too long")


class _StringTable:
    """Interned strings, referenced by 1-based index (0 = None)."""

    def __init__(self):
        self._ids = {}
        self.strings = []

    def ref(self, text):
        if text is None:
            return 0
        ref = self._ids.get(text)
        if ref is None:
            self.strings.append(text)
            ref = len(self.strings)
            self._ids[text] = ref
        return ref


# -- encoding -----------------------------------------------------------------


def _encode_error(out, table, error):
    """An error triple (type/message/severity) or the None marker."""
    if error is None:
        _write_varint(out, 0)
        return
    _write_varint(out, 1)
    _write_varint(out, table.ref(error["type"]))
    _write_varint(out, table.ref(error["message"]))
    _write_varint(out, table.ref(error.get("severity")))


def _encode_result(out, table, result):
    _write_varint(out, table.ref(result["command"]))
    code = _STATUS_CODE.get(result["status"], _STATUS_OTHER)
    out.append(code)
    if code == _STATUS_OTHER:
        _write_varint(out, table.ref(result["status"]))
    _write_varint(out, table.ref(result["detail"]))
    _write_varint(out, result.get("retries", 0))
    _encode_error(out, table, result["error"])


def encode_report(report_dict):
    """Pack a :meth:`ReplayReport.to_dict` payload into one blob."""
    table = _StringTable()
    body = bytearray()
    _write_varint(body, table.ref(report_dict["trace"]))
    body.append(1 if report_dict["halted"] else 0)
    _write_varint(body, table.ref(report_dict["halt_reason"]))
    _encode_error(body, table, report_dict.get("halt_error"))
    _write_varint(body, table.ref(report_dict.get("final_url")))
    _write_varint(body, report_dict.get("recoveries", 0))
    fidelity = report_dict.get("net_fidelity") or {}
    for key in _NET_FIDELITY_KEYS:
        _write_varint(body, fidelity.get(key, 0))
    results = report_dict["results"]
    _write_varint(body, len(results))
    for result in results:
        _encode_result(body, table, result)
    page_errors = report_dict["page_errors"]
    _write_varint(body, len(page_errors))
    for error in page_errors:
        _encode_error(body, table, error)
    counters = report_dict["perf_counters"]
    _write_varint(body, len(counters))
    for name in sorted(counters):
        counts = counters[name]
        _write_varint(body, table.ref(name))
        _write_varint(body, counts["hits"])
        _write_varint(body, counts["misses"])
        rate = counts.get("hit_rate")
        if rate is None:
            body.append(0)
        else:
            body.append(1)
            body.extend(_DOUBLE.pack(rate))

    out = bytearray(MAGIC)
    _write_varint(out, len(table.strings))
    for text in table.strings:
        encoded = text.encode("utf-8")
        _write_varint(out, len(encoded))
        out.extend(encoded)
    out.extend(body)
    return bytes(out)


# -- decoding -----------------------------------------------------------------


def decode_report(blob):
    """The exact inverse of :func:`encode_report`.

    Decoding is the batch-resume hot path — a resumed run rebuilds one
    report per journaled trace from these blobs instead of replaying —
    so the decoder is a flat loop over local state rather than a reader
    object: varints take a one/two-byte fast path (string references
    and small counts, the overwhelmingly common cases), and bounds are
    enforced by the interpreter's own ``IndexError`` on ``blob[pos]``
    rather than an explicit check per byte.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise WireError("wire payload must be bytes, got %s"
                        % type(blob).__name__)
    blob = bytes(blob)
    if blob[:len(MAGIC)] != MAGIC:
        raise WireError("bad magic; not a %s payload" % MAGIC.decode())
    try:
        report, pos = _decode_payload(blob, len(MAGIC))
    except (IndexError, struct.error):
        raise WireError("truncated payload")
    if pos != len(blob):
        raise WireError("%d trailing byte(s) after payload"
                        % (len(blob) - pos))
    return report


def _decode_payload(blob, pos):
    strings = []

    def varint():
        nonlocal pos
        byte = blob[pos]
        pos += 1
        if byte < 0x80:
            return byte
        result = byte & 0x7F
        shift = 7
        while True:
            byte = blob[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise WireError("varint too long")

    def string():
        """A string reference: 0 is None, otherwise 1-based table index."""
        ref = varint()
        if ref == 0:
            return None
        try:
            return strings[ref - 1]
        except IndexError:
            raise WireError("string reference %d outside table" % ref)

    def error():
        if varint() == 0:
            return None
        return {
            "type": string(),
            "message": string(),
            "severity": string(),
        }

    for _ in range(varint()):
        length = varint()
        if pos + length > len(blob):
            raise WireError("truncated payload")
        strings.append(blob[pos:pos + length].decode("utf-8"))
        pos += length

    report = {
        "trace": string(),
        "halted": bool(blob[pos]),
        "halt_reason": None,
        "halt_error": None,
        "final_url": None,
        "recoveries": 0,
        "net_fidelity": None,
    }
    pos += 1
    report["halt_reason"] = string()
    report["halt_error"] = error()
    report["final_url"] = string()
    report["recoveries"] = varint()
    report["net_fidelity"] = {key: varint() for key in _NET_FIDELITY_KEYS}
    results = []
    statuses = _STATUSES
    n_statuses = len(statuses)
    for _ in range(varint()):
        # Inline string() for the command reference (always present in
        # practice) and the one-byte status code — per-result overhead
        # is what resume latency is made of.
        byte = blob[pos]
        pos += 1
        ref = byte if byte < 0x80 else (byte & 0x7F) | (varint() << 7)
        command = strings[ref - 1] if ref else None
        code = blob[pos]
        pos += 1
        if code < n_statuses:
            status = statuses[code]
        elif code == _STATUS_OTHER:
            status = string()
        else:
            raise WireError("unknown status code %d" % code)
        results.append({
            "command": command,
            "status": status,
            "detail": string(),
            "retries": varint(),
            "error": error(),
        })
    report["results"] = results
    report["page_errors"] = [error() for _ in range(varint())]
    counters = {}
    for _ in range(varint()):
        name = string()
        hits = varint()
        misses = varint()
        rate = None
        if blob[pos]:
            rate = _DOUBLE.unpack_from(blob, pos + 1)[0]
            pos += 9
        else:
            pos += 1
        counters[name] = {"hits": hits, "misses": misses, "hit_rate": rate}
    report["perf_counters"] = counters
    return report, pos
