"""The session event stream.

The :class:`~repro.session.engine.SessionEngine` narrates every replay
as a stream of structured :class:`SessionEvent` objects — command
started, element located (or relaxed), action performed, failure,
page error, perf delta — and observers subscribe to the stream instead
of scraping engine state after the fact. The replay report, the perf
counters, WebErr's oracle, and AUsER's snapshotter are all observers
of this stream.
"""


class SessionEvent:
    """One structured observation emitted by the engine pipeline."""

    SESSION_STARTED = "session-started"
    NAVIGATED = "navigated"
    COMMAND_STARTED = "command-started"
    LOCATED = "located"
    RELAXED = "relaxed"
    ACTED = "acted"
    COMMAND_FINISHED = "command-finished"
    FAILED = "failed"
    RETRYING = "retrying"
    RECOVERING = "recovering"
    RECOVERED = "recovered"
    HALTED = "halted"
    PAGE_ERROR = "page-error"
    PERF_DELTA = "perf-delta"
    NET_FIDELITY = "net-fidelity"
    SESSION_FINISHED = "session-finished"

    def __init__(self, kind, command=None, result=None, detail="",
                 error=None, data=None):
        self.kind = kind
        self.command = command
        self.result = result
        self.detail = detail
        self.error = error
        #: Kind-specific payload (trace, browser, driver, counters, ...).
        self.data = data if data is not None else {}

    def __repr__(self):
        target = ""
        if self.command is not None:
            target = ", %r" % self.command.to_line()
        return "SessionEvent(%s%s)" % (self.kind, target)


class SessionObserver:
    """Base observer: dispatches events to per-kind ``on_*`` hooks.

    Subclasses override any of the hooks below (or :meth:`on_event`
    for a catch-all). Unhandled kinds are ignored, so observers stay
    forward-compatible when the engine grows new event kinds.
    """

    def on_event(self, event):
        handler = getattr(self, "on_" + event.kind.replace("-", "_"), None)
        if handler is not None:
            handler(event)

    # Per-kind hooks (no-ops by default).
    def on_session_started(self, event):
        pass

    def on_navigated(self, event):
        pass

    def on_command_started(self, event):
        pass

    def on_located(self, event):
        pass

    def on_relaxed(self, event):
        pass

    def on_acted(self, event):
        pass

    def on_command_finished(self, event):
        pass

    def on_failed(self, event):
        pass

    def on_retrying(self, event):
        pass

    def on_recovering(self, event):
        pass

    def on_recovered(self, event):
        pass

    def on_halted(self, event):
        pass

    def on_page_error(self, event):
        pass

    def on_perf_delta(self, event):
        pass

    def on_net_fidelity(self, event):
        pass

    def on_session_finished(self, event):
        pass


class EventStream:
    """Broadcasts events to subscribed observers, in subscription order."""

    def __init__(self, observers=None):
        self.observers = list(observers or [])

    def subscribe(self, observer):
        self.observers.append(observer)
        return observer

    def emit(self, event):
        for observer in self.observers:
            observer.on_event(event)
        return event

    def __repr__(self):
        return "EventStream(%d observers)" % len(self.observers)
