"""Pluggable per-stage policies for the session engine.

Each stage of the engine's per-command pipeline (schedule → locate →
act → observe) is configured by a policy object:

- :class:`TimingPolicy` — *schedule*: how recorded inter-command delays
  map onto the replay timeline (timing-accurate, scaled, fixed, none);
- :class:`LocatorPolicy` — *locate*: the progressive element-resolution
  chain (exact → implicit wait → XPath relaxation → recorded-coordinate
  fallback);
- :class:`FailurePolicy` — what a failed command does to the rest of
  the session (continue / stop / halt);
- :class:`RetryPolicy` — self-healing: which failures are retried, how
  many times, with what backoff, and whether renderer crashes trigger
  checkpoint recovery instead of aborting the session.

Policies are pure strategy objects: they hold configuration, never
per-session state. Session state (the relaxation resolution log, the
timeline anchor, the retry backoff stream, the replay checkpoint) lives
on the driver and the run, so one policy can safely configure many
concurrent sessions.
"""

from repro.util.backoff import BackoffSchedule
from repro.util.errors import ElementNotFoundError, is_transient


class TimingPolicy:
    """How inter-command delays are replayed (the *schedule* stage).

    Recorded elapsed times are gaps between consecutive user actions.
    The engine schedules each command on an absolute timeline anchored
    at the previous action: execution itself consumes simulated time (a
    click's navigation fetch, for instance), and that time is part of
    the recorded gap — waiting the full gap *again* would drift the
    replay (and its race windows) late. :meth:`target` computes the
    absolute due time; the engine sleeps only the remainder.
    """

    def __init__(self, kind, value=1.0):
        self.kind = kind
        self.value = value

    @classmethod
    def recorded(cls):
        """Wait exactly the recorded delays (timing-accurate replay)."""
        return cls("scaled", 1.0)

    @classmethod
    def no_wait(cls):
        """Replay commands with no wait time (WebErr stress test)."""
        return cls("scaled", 0.0)

    @classmethod
    def scaled(cls, factor):
        """Scale every recorded delay by ``factor``."""
        return cls("scaled", factor)

    @classmethod
    def fixed(cls, delay_ms):
        """Ignore recorded delays; wait a constant between commands."""
        return cls("fixed", delay_ms)

    def delay_for(self, command):
        if self.kind == "fixed":
            return self.value
        return command.elapsed_ms * self.value

    def target(self, anchor, command):
        """Absolute due time for ``command`` given the previous action's
        timestamp ``anchor``."""
        return anchor + self.delay_for(command)

    def __repr__(self):
        return "%s(%s, %r)" % (type(self).__name__, self.kind, self.value)


class Location:
    """Outcome of the locate stage: which client acts on which element."""

    EXACT = "exact"
    RELAXED = "relaxed"

    def __init__(self, client, element, strategy=EXACT, detail=""):
        self.client = client
        self.element = element
        self.strategy = strategy
        #: The relaxation heuristic description (e.g. ``"dropped id"``).
        self.detail = detail

    @property
    def relaxed(self):
        return self.strategy == self.RELAXED

    def __repr__(self):
        return "Location(%s, %r)" % (self.strategy, self.detail or "original")


class LocatorPolicy:
    """The element-resolution chain (the *locate* stage).

    One policy object owns the whole progressive chain the paper
    describes: the exact recorded XPath first (so replay is exact and
    timing-accurate when the DOM is stable), then — if configured — an
    implicit wait that lets simulated time pass for dynamically loaded
    content, then progressive XPath relaxation, and finally (for click
    commands) the recorded click coordinates, the paper's "backup
    element identification information".
    """

    def __init__(self, relaxation=True, implicit_wait_ms=0.0):
        self.relaxation_enabled = relaxation
        self.implicit_wait_ms = implicit_wait_ms

    def new_relaxation_engine(self):
        """A fresh per-driver relaxation engine (per-session state)."""
        from repro.core.relaxation import RelaxationEngine

        return RelaxationEngine(enabled=self.relaxation_enabled)

    def resolve(self, driver, xpath):
        """Run the chain against ``driver``'s active frame.

        Returns a :class:`Location`; raises
        :class:`~repro.util.errors.ElementNotFoundError` when even the
        relaxation ladder matches nothing.
        """
        client = driver.master.active_client
        if self.implicit_wait_ms > 0:
            try:
                element, _ = client.find(xpath, None)
                return Location(client, element)
            except ElementNotFoundError:
                pass
            # Let simulated time pass (AJAX responses and timers fire)
            # and retry the *exact* expression until the deadline before
            # falling back to relaxation — the standard WebDriver answer
            # to dynamically loaded content.
            deadline = driver.browser.clock.now() + self.implicit_wait_ms
            loop = driver.browser.event_loop
            while driver.browser.clock.now() < deadline:
                next_deadline = loop.next_deadline()
                if next_deadline is None or next_deadline > deadline:
                    break
                loop.run_for(next_deadline - driver.browser.clock.now())
                client = driver.master.active_client
                try:
                    element, _ = client.find(xpath, None)
                    return Location(client, element)
                except ElementNotFoundError:
                    continue
        element, description = client.find(xpath, driver.relaxation)
        if description != "original":
            return Location(client, element, Location.RELAXED,
                            detail=description)
        return Location(client, element)

    def fallback_position(self, command):
        """The recorded coordinates to click when location fails.

        Only single clicks carry usable backup identification; every
        other command has no coordinate fallback and returns None.
        """
        if getattr(command, "action", None) != "click":
            return None
        if not hasattr(command, "x") or not hasattr(command, "y"):
            return None
        return (command.x, command.y)

    def __repr__(self):
        return "LocatorPolicy(relaxation=%r, implicit_wait_ms=%r)" % (
            self.relaxation_enabled, self.implicit_wait_ms,
        )


class FailurePolicy:
    """What a failed command does to the rest of the session.

    - ``continue`` (default): record the failure, replay the rest —
      a developer usually wants the full damage report;
    - ``stop``: stop issuing commands but finish the session normally
      (settle the page, collect errors) — the classic stop-on-failure.
      Stop ends only the *session*: a batch run carries on with the
      remaining traces;
    - ``halt``: treat the failure like a driver halt: the report is
      marked halted with the failing command as the reason. Halt is the
      batch-level abort: a serial :class:`~repro.session.batch.BatchRunner`
      stops dispatching the remaining traces when a session halts under
      this policy.

    A :class:`~repro.util.errors.ReplayHaltedError` from the driver
    always halts the session regardless of policy — there is no active
    client left to continue with.
    """

    CONTINUE = "continue"
    STOP = "stop"
    HALT = "halt"

    def __init__(self, on_failure=CONTINUE):
        if on_failure not in (self.CONTINUE, self.STOP, self.HALT):
            raise ValueError("unknown failure mode %r" % (on_failure,))
        self.on_failure = on_failure

    @classmethod
    def continue_on_failure(cls):
        return cls(cls.CONTINUE)

    @classmethod
    def stop_on_failure(cls):
        return cls(cls.STOP)

    @classmethod
    def halt_on_failure(cls):
        return cls(cls.HALT)

    def decide(self, result):
        """``continue`` / ``stop`` / ``halt`` for one command result."""
        if result.succeeded:
            return self.CONTINUE
        return self.on_failure

    def __repr__(self):
        return "FailurePolicy(%s)" % self.on_failure


class RetryPolicy:
    """Self-healing for transient failures (the engine's retry loop).

    When a command fails with a *transient* error (see
    :func:`repro.util.errors.classify` — injected faults, renderer
    crashes/hangs, network faults and timeouts), the engine retries it
    up to ``max_attempts`` total attempts, waiting a capped-exponential,
    deterministically jittered backoff between attempts. All "sleeps"
    advance the virtual clock, so retried replays stay exactly
    reproducible.

    ``recover_crashes`` additionally turns a
    :class:`~repro.util.errors.RendererCrashError` into tab reload +
    replay-checkpoint resume (re-navigate to the last committed URL and
    re-execute the commands issued since, with fault injection
    suppressed) before the retry — without it a crashed renderer would
    reject every subsequent attempt.

    Permanent and fatal errors are never retried.
    """

    def __init__(self, max_attempts=1, backoff=None, recover_crashes=True,
                 seed=0):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        #: Total attempts per command (1 = fail fast, no retry).
        self.max_attempts = max_attempts
        self.backoff = backoff if backoff is not None else BackoffSchedule()
        self.recover_crashes = recover_crashes
        #: Seed of the backoff jitter stream (per-run sequence).
        self.seed = seed

    @classmethod
    def none(cls):
        """No retries, no crash recovery — the pre-chaos behaviour."""
        return cls(max_attempts=1, recover_crashes=False)

    @classmethod
    def default(cls):
        """Up to 4 attempts with default backoff, crashes recovered."""
        return cls(max_attempts=4)

    @property
    def enabled(self):
        return self.max_attempts > 1 or self.recover_crashes

    def should_retry(self, error, attempt):
        """True when ``error`` on attempt number ``attempt`` is retried."""
        return attempt < self.max_attempts and is_transient(error)

    def new_sequence(self):
        """A fresh per-run backoff delay stream."""
        return self.backoff.sequence(self.seed)

    def __repr__(self):
        return "RetryPolicy(max_attempts=%d, recover_crashes=%r)" % (
            self.max_attempts, self.recover_crashes)
