"""WaRR itself: the Recorder, Commands, and Replayer.

The paper's architecture (Figure 1): the WaRR Recorder is embedded in
the browser's WebKit layer and logs user actions as WaRR Commands; the
WaRR Replayer drives a developer-mode browser through a WebDriver/
ChromeDriver stack to play them back, relaxing stale XPath locators as
needed.
"""

from repro.core.commands import (
    WarrCommand,
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    TypeCommand,
    SwitchFrameCommand,
    parse_command_line,
)
from repro.core.trace import WarrTrace
from repro.core.recorder import WarrRecorder
from repro.core.relaxation import RelaxationEngine, relax_candidates
from repro.core.chromedriver import (
    ChromeDriverConfig,
    ChromeDriverClient,
    ChromeDriverMaster,
)
from repro.core.webdriver import WebDriver
from repro.core.replayer import WarrReplayer, ReplayReport, CommandResult, TimingMode
from repro.core.analysis import TraceStats, analyze_trace
from repro.core.nondeterminism import (
    NondeterminismLog,
    NondeterminismRecorder,
    NondeterminismReplayer,
)
from repro.core.popup_recorder import PopupRecorder, PopupLog, replay_popup_log

__all__ = [
    "WarrCommand",
    "ClickCommand",
    "DoubleClickCommand",
    "DragCommand",
    "TypeCommand",
    "SwitchFrameCommand",
    "parse_command_line",
    "WarrTrace",
    "WarrRecorder",
    "RelaxationEngine",
    "relax_candidates",
    "ChromeDriverConfig",
    "ChromeDriverClient",
    "ChromeDriverMaster",
    "WebDriver",
    "WarrReplayer",
    "ReplayReport",
    "CommandResult",
    "TimingMode",
    "TraceStats",
    "analyze_trace",
    "NondeterminismLog",
    "NondeterminismRecorder",
    "NondeterminismReplayer",
    "PopupRecorder",
    "PopupLog",
    "replay_popup_log",
]
