"""The WaRR Replayer.

Simulates a user interacting with a web application as specified by a
trace of WaRR Commands (paper, Section III-B): a browser interaction
driver (WebDriver/ChromeDriver) converts each command into browser
operations. The replayer:

- honors recorded inter-command delays (timing-accurate replay) or
  overrides them (WebErr's timing-error injection),
- relaxes stale XPath locators progressively,
- falls back to the recorded click coordinates when even relaxation
  fails (the "backup element identification information"),
- surfaces page-script errors and replay halts in its report.
"""

from repro import perf
from repro.core.chromedriver import ChromeDriverConfig
from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
)
from repro.core.webdriver import WebDriver
from repro.util.errors import (
    DriverError,
    ElementNotFoundError,
    ReplayError,
    ReplayHaltedError,
)


class TimingMode:
    """How inter-command delays are replayed."""

    def __init__(self, kind, value=1.0):
        self.kind = kind
        self.value = value

    @classmethod
    def recorded(cls):
        """Wait exactly the recorded delays (timing-accurate replay)."""
        return cls("scaled", 1.0)

    @classmethod
    def no_wait(cls):
        """Replay commands with no wait time (WebErr stress test)."""
        return cls("scaled", 0.0)

    @classmethod
    def scaled(cls, factor):
        """Scale every recorded delay by ``factor``."""
        return cls("scaled", factor)

    @classmethod
    def fixed(cls, delay_ms):
        """Ignore recorded delays; wait a constant between commands."""
        return cls("fixed", delay_ms)

    def delay_for(self, command):
        if self.kind == "fixed":
            return self.value
        return command.elapsed_ms * self.value

    def __repr__(self):
        return "TimingMode(%s, %r)" % (self.kind, self.value)


class CommandResult:
    """Outcome of replaying one command."""

    OK = "ok"
    RELAXED = "relaxed"
    COORDINATE = "coordinate-fallback"
    FAILED = "failed"

    def __init__(self, command, status, detail="", error=None):
        self.command = command
        self.status = status
        self.detail = detail
        self.error = error

    @property
    def succeeded(self):
        return self.status in (self.OK, self.RELAXED, self.COORDINATE)

    def __repr__(self):
        return "CommandResult(%s, %r)" % (self.status, self.command.to_line())


class ReplayReport:
    """Everything a developer (or WebErr's oracle) needs after replay."""

    def __init__(self, trace):
        self.trace = trace
        self.results = []
        self.halted = False
        self.halt_reason = ""
        self.page_errors = []
        self.final_url = None
        #: Fast-path cache activity during this replay:
        #: {cache: {"hits": h, "misses": m, "hit_rate": r}}.
        self.perf_counters = {}

    @property
    def replayed_count(self):
        return sum(1 for r in self.results if r.succeeded)

    @property
    def failed_count(self):
        return sum(1 for r in self.results if not r.succeeded)

    @property
    def relaxed_count(self):
        return sum(1 for r in self.results
                   if r.status in (CommandResult.RELAXED, CommandResult.COORDINATE))

    @property
    def complete(self):
        """True if every command was replayed successfully."""
        return not self.halted and self.failed_count == 0

    def failures(self):
        return [r for r in self.results if not r.succeeded]

    def perf_summary(self):
        """One line per cache: ``name 98% (492 hits / 8 misses)``."""
        lines = []
        for name in sorted(self.perf_counters):
            counts = self.perf_counters[name]
            lines.append(
                "%s %.0f%% (%d hits / %d misses)"
                % (name, 100.0 * counts["hit_rate"], counts["hits"],
                   counts["misses"])
            )
        return lines

    def summary(self):
        return (
            "replayed %d/%d commands (%d relaxed, %d failed%s); "
            "%d page error(s)"
            % (self.replayed_count, len(self.trace), self.relaxed_count,
               self.failed_count, ", HALTED" if self.halted else "",
               len(self.page_errors))
        )

    def __repr__(self):
        return "ReplayReport(%s)" % self.summary()


class WarrReplayer:
    """Replays WaRR traces through a (developer-mode) browser."""

    def __init__(self, browser, config=None, relaxation=True, timing=None,
                 stop_on_failure=False, implicit_wait_ms=0.0):
        self.browser = browser
        self.config = config if config is not None else ChromeDriverConfig.warr()
        self.relaxation_enabled = relaxation
        self.timing = timing if timing is not None else TimingMode.recorded()
        self.stop_on_failure = stop_on_failure
        self.implicit_wait_ms = implicit_wait_ms

    def replay(self, trace):
        """Replay ``trace`` from its start URL; returns a ReplayReport."""
        report = ReplayReport(trace)
        error_base = len(self.browser.page_errors)
        perf_base = perf.snapshot()
        driver = WebDriver(self.browser, config=self.config,
                           relaxation=self.relaxation_enabled,
                           implicit_wait_ms=self.implicit_wait_ms)
        # Recording starts its timeline at begin(), i.e. just before the
        # initial navigation — anchor the replay timeline the same way.
        session_start = self.browser.clock.now()
        try:
            driver.get(trace.start_url)
        except Exception as error:
            report.halted = True
            report.halt_reason = "navigation to %r failed: %s" % (
                trace.start_url, error)
            report.perf_counters = perf.delta(perf_base)
            return report

        # Recorded elapsed times are gaps between consecutive user
        # actions. Schedule each command on an absolute timeline anchored
        # at the previous action: execution itself consumes simulated
        # time (a click's navigation fetch, for instance), and that time
        # is part of the recorded gap — waiting the full gap *again*
        # would drift the replay (and its race windows) late.
        anchor = session_start
        for command in trace:
            target = anchor + self.timing.delay_for(command)
            remaining = target - self.browser.clock.now()
            driver.wait(max(0.0, remaining))
            anchor = self.browser.clock.now()
            try:
                result = self._execute(driver, command)
            except ReplayHaltedError as error:
                report.results.append(CommandResult(
                    command, CommandResult.FAILED, error=error))
                report.halted = True
                report.halt_reason = str(error)
                break
            report.results.append(result)
            if not result.succeeded and self.stop_on_failure:
                break

        # Let in-flight work (XHRs fired by the last action, timers)
        # complete, as a user letting the page settle would.
        self.browser.event_loop.run_until_idle()
        report.page_errors = list(self.browser.page_errors[error_base:])
        report.final_url = driver.tab.url if driver._tab is not None else None
        report.perf_counters = perf.delta(perf_base)
        return report

    # -- per-command execution ------------------------------------------------

    def execute_command(self, driver, command):
        """Replay a single command on an existing driver session.

        Public stepping interface used by WebErr's grammar inference,
        which needs to snapshot the page between commands.
        """
        return self._execute(driver, command)

    def _execute(self, driver, command):
        if isinstance(command, SwitchFrameCommand):
            return self._execute_switch(driver, command)
        if isinstance(command, DoubleClickCommand):
            return self._guarded(driver, command,
                                 lambda: driver.double_click(command.xpath))
        if isinstance(command, ClickCommand):
            return self._execute_click(driver, command)
        if isinstance(command, TypeCommand):
            return self._guarded(
                driver, command,
                lambda: driver.send_key(command.xpath, command.key, command.code))
        if isinstance(command, DragCommand):
            return self._guarded(
                driver, command,
                lambda: driver.drag(command.xpath, command.dx, command.dy))
        raise ReplayError("cannot replay command %r" % (command,))

    def _execute_switch(self, driver, command):
        try:
            if command.is_default:
                driver.switch_to_default()
            else:
                driver.switch_to_frame(command.xpath)
            return CommandResult(command, CommandResult.OK)
        except ReplayHaltedError:
            raise
        except (DriverError, ElementNotFoundError) as error:
            return CommandResult(command, CommandResult.FAILED, error=error)

    def _execute_click(self, driver, command):
        resolutions_before = len(driver.relaxation.resolutions)
        try:
            driver.click(command.xpath)
            return self._status_from_relaxation(driver, command,
                                                resolutions_before)
        except ReplayHaltedError:
            raise
        except ElementNotFoundError:
            # Backup element identification: the recorded click position.
            try:
                driver.click_at(command.x, command.y)
                return CommandResult(command, CommandResult.COORDINATE,
                                     detail="clicked at recorded (%d,%d)"
                                     % (command.x, command.y))
            except ReplayHaltedError:
                raise
            except Exception as error:
                return CommandResult(command, CommandResult.FAILED, error=error)
        except DriverError as error:
            return CommandResult(command, CommandResult.FAILED, error=error)

    def _guarded(self, driver, command, operation):
        resolutions_before = len(driver.relaxation.resolutions)
        try:
            operation()
            return self._status_from_relaxation(driver, command,
                                                resolutions_before)
        except ReplayHaltedError:
            raise
        except (ElementNotFoundError, DriverError) as error:
            return CommandResult(command, CommandResult.FAILED, error=error)

    @staticmethod
    def _status_from_relaxation(driver, command, resolutions_before):
        new = driver.relaxation.resolutions[resolutions_before:]
        relaxed = [desc for _, desc in new if desc != "original"]
        if relaxed:
            return CommandResult(command, CommandResult.RELAXED,
                                 detail="; ".join(relaxed))
        return CommandResult(command, CommandResult.OK)
