"""The WaRR Replayer.

Simulates a user interacting with a web application as specified by a
trace of WaRR Commands (paper, Section III-B). Since the session-layer
refactor, the replayer is a thin configuration of the
:class:`~repro.session.engine.SessionEngine`: it maps its legacy knobs
onto the engine's policy surface —

- honoring recorded inter-command delays (or overriding them) is the
  :class:`~repro.session.policies.TimingPolicy`,
- progressive XPath relaxation, implicit waits, and the recorded-
  coordinate fallback (the "backup element identification information")
  are the :class:`~repro.session.policies.LocatorPolicy`,
- ``stop_on_failure`` is the
  :class:`~repro.session.policies.FailurePolicy`,

and the replay report — page-script errors, halts, per-command
outcomes — is assembled by observers of the engine's event stream.
"""

from repro.core.chromedriver import ChromeDriverConfig
from repro.session.engine import SessionEngine
from repro.session.policies import FailurePolicy, LocatorPolicy, TimingPolicy
from repro.session.report import CommandResult, ReplayReport

#: Back-compatible name: the timing policy grew out of the replayer's
#: original TimingMode and keeps its exact API.
TimingMode = TimingPolicy

__all__ = [
    "CommandResult",
    "ReplayReport",
    "TimingMode",
    "WarrReplayer",
]


class WarrReplayer:
    """Replays WaRR traces through a (developer-mode) browser."""

    def __init__(self, browser, config=None, relaxation=True, timing=None,
                 stop_on_failure=False, implicit_wait_ms=0.0):
        self.browser = browser
        self.config = config if config is not None else ChromeDriverConfig.warr()
        self.relaxation_enabled = relaxation
        self.timing = timing if timing is not None else TimingMode.recorded()
        self.stop_on_failure = stop_on_failure
        self.implicit_wait_ms = implicit_wait_ms
        self.engine = SessionEngine(
            browser,
            driver_config=self.config,
            timing=self.timing,
            locator=LocatorPolicy(relaxation=relaxation,
                                  implicit_wait_ms=implicit_wait_ms),
            failure=(FailurePolicy.stop_on_failure() if stop_on_failure
                     else FailurePolicy.continue_on_failure()),
        )

    def replay(self, trace, observers=()):
        """Replay ``trace`` from its start URL; returns a ReplayReport."""
        return self.engine.run(trace, observers=observers)

    def execute_command(self, driver, command):
        """Replay a single command on an existing driver session.

        Legacy stepping interface (WebErr's grammar inference now steps
        through :meth:`SessionEngine.start` instead); delegates to the
        engine's locate → act pipeline.
        """
        return self.engine.execute(driver, command)
