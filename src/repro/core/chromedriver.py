"""ChromeDriver simulation: master, per-iframe clients, and WaRR's fixes.

The paper (Section IV-C) describes ChromeDriver as "a plug-in composed
of a master and multiple ChromeDriver clients, one for each iframe", and
details four pieces of incomplete functionality WaRR had to fix:

1. **Double clicks** — stock ChromeDriver has no double-click support;
   WaRR adds it "by using JavaScript to create and trigger the necessary
   events".
2. **Text input** — stock ChromeDriver sets the target's ``value``
   property, which only exists meaningfully on input/textarea; WaRR sets
   the correct property (``textContent`` for div-like elements) and
   triggers the required events.
3. **Iframes** — Chrome loads no client for src-less iframes (WaRR makes
   the parent's client execute those commands), and ChromeDriver has no
   way to switch back to the default iframe (WaRR reserves a custom
   iframe name for it).
4. **Active client after page change** — the master's new-active-client
   selection assumes a load/unload order Chrome does not guarantee; a
   page change can leave no active client and halt replay. WaRR ensures
   unloads cannot prevent selecting a new active client.

Every fix is a flag on :class:`ChromeDriverConfig`; ``stock()`` disables
all of them so the ablation benchmarks can demonstrate each failure.
"""

from repro.browser.ipc import InputMessage
from repro.events.event import KeyboardEvent, MouseEvent, DragEvent, InputEvent
from repro.events.keys import (
    KEY_BACKSPACE,
    KEY_ENTER,
    is_printable,
)
from repro.util.errors import DriverError, ElementNotFoundError, ReplayHaltedError
from repro.xpath.evaluator import evaluate


class ChromeDriverConfig:
    """Feature flags for the driver; defaults are WaRR's fixed driver."""

    def __init__(self, fix_double_click=True, fix_text_input=True,
                 fix_srcless_iframe=True, fix_switch_back=True,
                 fix_active_client=True):
        self.fix_double_click = fix_double_click
        self.fix_text_input = fix_text_input
        self.fix_srcless_iframe = fix_srcless_iframe
        self.fix_switch_back = fix_switch_back
        self.fix_active_client = fix_active_client

    @classmethod
    def warr(cls):
        """All WaRR fixes enabled (the paper's replayer)."""
        return cls()

    @classmethod
    def stock(cls):
        """Pre-WaRR ChromeDriver: every fix disabled."""
        return cls(fix_double_click=False, fix_text_input=False,
                   fix_srcless_iframe=False, fix_switch_back=False,
                   fix_active_client=False)

    def __repr__(self):
        flags = ["%s=%r" % (name, getattr(self, name)) for name in (
            "fix_double_click", "fix_text_input", "fix_srcless_iframe",
            "fix_switch_back", "fix_active_client")]
        return "ChromeDriverConfig(%s)" % ", ".join(flags)


class ChromeDriverClient:
    """Executes commands on one frame.

    ``root_element`` scopes the client to a subtree: that is how the
    parent document's client executes commands on a src-less iframe.
    """

    def __init__(self, master, engine, root_element=None):
        self.master = master
        self.engine = engine
        self.root_element = root_element

    # -- element lookup --------------------------------------------------------

    def find(self, expression, relaxation=None):
        """Resolve an XPath within this client's frame (or subtree)."""
        context = self.root_element if self.root_element is not None else self.engine.document
        if relaxation is None:
            matches = evaluate(expression, context)
            if not matches:
                raise ElementNotFoundError("no element matches %r" % expression)
            return matches[0], "original"
        return relaxation.resolve(expression, context)

    # -- actions ------------------------------------------------------------

    def _send_input(self, kind, event):
        """Deliver raw input to this client's frame engine.

        Automation input crosses the browser → renderer IPC boundary
        like real user input does; the message is addressed to this
        client's frame so subframe clients keep frame-local coordinates.
        """
        renderer = self.engine.tab.renderer
        message = InputMessage(kind, event, target_engine=self.engine)
        renderer.send_input(message)

    def click(self, element):
        """Click via the engine's input path (WebDriver supports this)."""
        x, y = self.engine.layout.click_point(element)
        event = MouseEvent("mousepress", client_x=x, client_y=y, detail=1,
                           timestamp=self._now())
        self._send_input(InputMessage.MOUSE, event)

    def click_at(self, x, y):
        """Coordinate click — the backup identification fallback."""
        event = MouseEvent("mousepress", client_x=x, client_y=y, detail=1,
                           timestamp=self._now())
        self._send_input(InputMessage.MOUSE, event)

    def double_click(self, element):
        """Double click.

        Stock ChromeDriver lacks support entirely; WaRR's fix creates
        and triggers the necessary JavaScript events.
        """
        if not self.master.config.fix_double_click:
            raise DriverError(
                "ChromeDriver does not support double clicks"
            )
        x, y = self.engine.layout.click_point(element)
        for event_type in ("mousedown", "mouseup", "mousedown", "mouseup"):
            event = MouseEvent(event_type, client_x=x, client_y=y, detail=2,
                               timestamp=self._now())
            self.engine.dispatch(element, event)
        dbl = MouseEvent("dblclick", client_x=x, client_y=y, detail=2,
                         timestamp=self._now())
        self.engine.dispatch(element, dbl)
        self.engine.invalidate_layout()

    def send_key(self, element, key, code):
        """Simulate one keystroke into ``element``.

        Dispatches synthetic keydown/keypress (whose key properties only
        carry real values in a developer-mode browser), applies the text
        mutation, fires ``input``, then keyup. Without
        ``fix_text_input``, the mutation always goes through the
        ``value`` property — invisible on container elements like div.
        """
        developer_mode = self.master.browser.developer_mode
        self.engine.set_focus(element if element.is_focusable() else None)

        down = KeyboardEvent.synthetic("keydown", key, code,
                                       timestamp=self._now(),
                                       developer_mode=developer_mode)
        proceed = self.engine.dispatch(element, down)
        if proceed and is_printable(key):
            press = KeyboardEvent.synthetic("keypress", key, code,
                                            timestamp=self._now(),
                                            developer_mode=developer_mode)
            proceed = self.engine.dispatch(element, press)
        if proceed:
            self._apply_key(element, key, code)
        keyup = KeyboardEvent.synthetic("keyup", key, code,
                                        timestamp=self._now(),
                                        developer_mode=developer_mode)
        self.engine.dispatch(element, keyup)
        self.engine.invalidate_layout()

    def _apply_key(self, element, key, code):
        if code == KEY_ENTER:
            if element.tag == "input":
                self.engine.event_handler.submit_enclosing_form(element)
            return
        if code == KEY_BACKSPACE:
            if element.supports_value():
                element.value = element.value[:-1]
            elif self.master.config.fix_text_input:
                element.text_content = element.text_content[:-1]
            else:
                element.value = element.value[:-1]
            self.engine.dispatch(element, InputEvent())
            return
        if not is_printable(key):
            return
        if element.supports_value():
            element.value = element.value + key
        elif self.master.config.fix_text_input:
            # WaRR's fix: set the *correct* property for container
            # elements — their text content, not a dangling .value.
            element.text_content = element.text_content + key
        else:
            # Stock ChromeDriver: sets .value even on divs. The DOM text
            # never changes, so the keystroke is effectively lost.
            element.value = element.value + key
        self.engine.dispatch(element, InputEvent(data=key))

    def drag(self, element, dx, dy):
        """Drag an element by (dx, dy)."""
        x, y = self.engine.layout.click_point(element)
        event = DragEvent("rawdrag", dx=dx, dy=dy, client_x=x, client_y=y,
                          timestamp=self._now())
        self._send_input(InputMessage.DRAG, event)

    def _now(self):
        return self.master.browser.clock.now()

    def __repr__(self):
        scope = " scoped" if self.root_element is not None else ""
        return "ChromeDriverClient(%r%s)" % (self.engine, scope)


class ChromeDriverMaster:
    """Tracks frame clients and routes commands to the active one."""

    def __init__(self, browser, config=None):
        self.browser = browser
        self.config = config if config is not None else ChromeDriverConfig.warr()
        self.clients = []
        self._active = None
        browser.frame_load_listeners.append(self._on_frame_loaded)
        # Adopt frames that were already loaded before the driver attached.
        for tab in browser.tabs:
            if tab.renderer is not None:
                for engine in tab.renderer.engine.all_engines():
                    self._on_frame_loaded(engine)

    # -- client lifecycle -------------------------------------------------

    def _on_frame_loaded(self, engine):
        client = ChromeDriverClient(self, engine)
        self.clients.append(client)
        engine.unload_listeners.append(self._on_frame_unloaded)
        if engine.parent is None:
            # A new page's main frame always becomes the active client.
            self._active = client

    def _on_frame_unloaded(self, engine):
        self.clients = [c for c in self.clients if c.engine is not engine]
        if self._active is None:
            return
        if self.config.fix_active_client:
            # WaRR's fix: an unload can never clear a selection that
            # already points at a live client.
            if self._active.engine is engine:
                self._active = self._main_frame_client()
            return
        # Stock behaviour: the selection logic assumes unloads arrive
        # before the replacement page's loads. Chrome delivers this
        # unload *after* the new page loaded, and the stale bookkeeping
        # clears the active client — replay will halt.
        self._active = None

    def _main_frame_client(self):
        for client in self.clients:
            if client.engine.parent is None and client.engine.loaded:
                return client
        return None

    # -- command routing ------------------------------------------------------

    @property
    def active_client(self):
        """The client executing commands; raises if replay has halted."""
        if self._active is None:
            raise ReplayHaltedError(
                "no active ChromeDriver client — replay halted "
                "(page change lost the active client)"
            )
        return self._active

    def has_active_client(self):
        return self._active is not None

    # -- frame switching --------------------------------------------------

    def switch_to_frame(self, iframe_xpath, relaxation=None):
        """Make the client for the given iframe the active one."""
        current = self.active_client
        iframe, _ = current.find(iframe_xpath, relaxation)
        if iframe.tag != "iframe":
            raise DriverError("%r is not an iframe" % iframe_xpath)
        child_engine = current.engine.frame_for(iframe)
        if child_engine is not None:
            for client in self.clients:
                if client.engine is child_engine:
                    self._active = client
                    return client
            client = ChromeDriverClient(self, child_engine)
            self.clients.append(client)
            self._active = client
            return client
        # src-less iframe: Chrome loaded no client for it.
        if not self.config.fix_srcless_iframe:
            raise DriverError(
                "cannot execute commands on an iframe without src: "
                "Chrome loads no ChromeDriver client for it"
            )
        # WaRR's fix: the parent document's client executes the commands,
        # scoped to the iframe's subtree.
        client = ChromeDriverClient(self, current.engine, root_element=iframe)
        self.clients.append(client)
        self._active = client
        return client

    def switch_to_default(self):
        """Return to the main frame (the paper's custom-iframe-name fix)."""
        if not self.config.fix_switch_back:
            raise DriverError(
                "ChromeDriver provides no means to switch back to the "
                "default iframe"
            )
        client = self._main_frame_client()
        if client is None:
            raise ReplayHaltedError("no main-frame client to switch back to")
        self._active = client
        return client

    def __repr__(self):
        return "ChromeDriverMaster(clients=%d, active=%r)" % (
            len(self.clients), self._active,
        )
