"""Recording and replaying page-script nondeterminism.

The paper lists this as a strength of the in-browser design: "it can
easily be extended to record various sources of nondeterminism (e.g.,
timers)" (Section I). This module is that extension:

- pages draw randomness through ``window.random()`` and read the clock
  through ``window.now()`` — the two nondeterminism sources scripts see;
- a :class:`NondeterminismRecorder` attached to the browser logs every
  value handed out, in order, into a :class:`NondeterminismLog`;
- during replay, the log is *installed* on the replay browser, and the
  same sequence of values is served back to the scripts, making runs
  with random-dependent client code reproducible.

The log serializes next to the trace (``#! nd-log v1`` format) so a bug
report can ship both.
"""

from repro.util.errors import TraceFormatError

KIND_RANDOM = "random"
KIND_TIME = "time"


class NondeterminismLog:
    """Ordered record of nondeterministic values a page observed."""

    _MAGIC = "#! nd-log v1"

    def __init__(self, entries=None):
        #: list of (kind, value) in the order scripts consumed them
        self.entries = list(entries or [])

    def append(self, kind, value):
        if kind not in (KIND_RANDOM, KIND_TIME):
            raise ValueError("unknown nondeterminism kind %r" % kind)
        self.entries.append((kind, float(value)))

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- serialization -----------------------------------------------------

    def to_text(self):
        lines = [self._MAGIC]
        lines.extend("%s %r" % (kind, value) for kind, value in self.entries)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text):
        lines = text.splitlines()
        if not lines or lines[0].strip() != cls._MAGIC:
            raise TraceFormatError("missing nondeterminism-log header")
        log = cls()
        for line in lines[1:]:
            stripped = line.strip()
            if not stripped:
                continue
            kind, value = stripped.split(None, 1)
            log.append(kind, float(value))
        return log

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_text())

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_text(handle.read())

    def __repr__(self):
        return "NondeterminismLog(%d entries)" % len(self.entries)


class NondeterminismRecorder:
    """Logs every nondeterministic value pages draw from a browser."""

    def __init__(self):
        self.log = NondeterminismLog()
        self._browser = None

    def attach(self, browser):
        """Start logging ``window.random()`` / ``window.now()`` draws."""
        self._browser = browser
        browser.nondeterminism_taps.append(self._record)
        return self

    def detach(self):
        if self._browser is not None:
            taps = self._browser.nondeterminism_taps
            if self._record in taps:
                taps.remove(self._record)
        self._browser = None

    def _record(self, kind, value):
        self.log.append(kind, value)


class NondeterminismReplayer:
    """Feeds a recorded log back to the pages of a replay browser.

    Installed via :meth:`install`; every ``window.random()`` call during
    replay returns the next recorded value instead of drawing fresh
    randomness. Exhausting the log falls back to live values (and
    counts the overrun, which usually signals divergence).
    """

    def __init__(self, log):
        self.log = log
        self._cursor = 0
        self.overruns = 0

    def install(self, browser):
        browser.nondeterminism_source = self._next
        return self

    def _next(self, kind, live_value):
        while self._cursor < len(self.log.entries):
            recorded_kind, value = self.log.entries[self._cursor]
            self._cursor += 1
            if recorded_kind == kind:
                return value
            # Kind mismatch: the replay diverged; skip and count it.
            self.overruns += 1
        self.overruns += 1
        return live_value

    @property
    def consumed(self):
        return self._cursor
