"""WaRR Commands.

A WaRR Command (paper, Section IV-B) contains the action type (``click``,
``doubleclick``, ``drag``, ``type``), an XPath identifier of the target
element, action-specific information, and the time elapsed since the
previous action. The wire format matches Figure 4::

    click //div/span[@id="start"] 82,44 1
    type //td/div[@id="content"] [H,72] 3
    drag //div[@id="widget"] 15,-4 12

Click commands carry the click position as backup identification; drag
commands carry the positional delta; type commands carry the key's
string representation and its virtual key code.

One addition: ``switchframe`` commands mark the recorder observing
interaction move into (or back out of) an iframe. The paper implements
frame switching inside ChromeDriver with "a custom iframe name to signal
a change to the default iframe"; we surface the same information as an
explicit command so traces stay self-contained. The reserved name
``default`` switches back to the main frame.
"""

import re

from repro.util.errors import TraceFormatError

#: Frame locator meaning "the main document" (paper's custom iframe name).
DEFAULT_FRAME = "default"


class WarrCommand:
    """Base class; concrete commands define ``action`` and a payload."""

    action = None

    def __init__(self, xpath, elapsed_ms=0):
        self.xpath = str(xpath)
        self.elapsed_ms = int(elapsed_ms)

    def payload(self):
        """Action-specific middle field of the wire format."""
        raise NotImplementedError

    def to_line(self):
        """Serialize to one Figure-4-style trace line."""
        return "%s %s %s %d" % (self.action, self.xpath, self.payload(),
                                self.elapsed_ms)

    def copy(self, **overrides):
        """Duplicate the command, optionally overriding fields.

        WebErr's error injectors use this to build mutated traces
        without touching the original.
        """
        fields = dict(self._fields())
        fields.update(overrides)
        return type(self)(**fields)

    def _fields(self):
        return {"xpath": self.xpath, "elapsed_ms": self.elapsed_ms}

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.to_line() == other.to_line()
        )

    def __hash__(self):
        return hash(self.to_line())

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.to_line())


class ClickCommand(WarrCommand):
    """A single mouse click; (x, y) is the backup position."""

    action = "click"

    def __init__(self, xpath, x=0, y=0, elapsed_ms=0):
        super().__init__(xpath, elapsed_ms)
        self.x = int(x)
        self.y = int(y)

    def payload(self):
        return "%d,%d" % (self.x, self.y)

    def _fields(self):
        return {"xpath": self.xpath, "x": self.x, "y": self.y,
                "elapsed_ms": self.elapsed_ms}


class DoubleClickCommand(ClickCommand):
    """A double click (Google Docs-style interactions)."""

    action = "doubleclick"


class DragCommand(WarrCommand):
    """A UI-element drag; (dx, dy) is the positional difference."""

    action = "drag"

    def __init__(self, xpath, dx=0, dy=0, elapsed_ms=0):
        super().__init__(xpath, elapsed_ms)
        self.dx = int(dx)
        self.dy = int(dy)

    def payload(self):
        return "%d,%d" % (self.dx, self.dy)

    def _fields(self):
        return {"xpath": self.xpath, "dx": self.dx, "dy": self.dy,
                "elapsed_ms": self.elapsed_ms}


#: Characters in a typed key that would corrupt the one-line wire
#: format: a newline splits the line, ``]`` ends the payload early, a
#: bare backslash would be ambiguous with the escapes themselves, and a
#: raw ``[`` after a whitespace key would look like the payload opener.
_KEY_ESCAPES = {
    "\\": "\\\\",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "[": "\\[",
    "]": "\\]",
}
_KEY_UNESCAPES = {"\\": "\\", "n": "\n", "r": "\r", "t": "\t",
                  "[": "[", "]": "]"}
_KEY_ESCAPE_RE = re.compile(r"[\\\n\r\t\[\]]")
_KEY_UNESCAPE_RE = re.compile(r"\\(.)")


def _escape_key(key):
    return _KEY_ESCAPE_RE.sub(lambda m: _KEY_ESCAPES[m.group(0)], key)


def _unescape_key(text):
    return _KEY_UNESCAPE_RE.sub(
        lambda m: _KEY_UNESCAPES.get(m.group(1), m.group(1)), text)


class TypeCommand(WarrCommand):
    """One keystroke: string representation plus virtual key code."""

    action = "type"

    def __init__(self, xpath, key="", code=0, elapsed_ms=0):
        super().__init__(xpath, elapsed_ms)
        self.key = key
        self.code = int(code)

    def payload(self):
        return "[%s,%d]" % (_escape_key(self.key), self.code)

    def _fields(self):
        return {"xpath": self.xpath, "key": self.key, "code": self.code,
                "elapsed_ms": self.elapsed_ms}


class SwitchFrameCommand(WarrCommand):
    """Interaction moved to another frame (or back to ``default``)."""

    action = "switchframe"

    def __init__(self, xpath, elapsed_ms=0):
        super().__init__(xpath, elapsed_ms)

    def payload(self):
        return "-"

    @property
    def is_default(self):
        return self.xpath == DEFAULT_FRAME


_COMMAND_TYPES = {
    cls.action: cls
    for cls in (ClickCommand, DoubleClickCommand, DragCommand, TypeCommand,
                SwitchFrameCommand)
}

# payload matchers anchored at the end of "<xpath> <payload>"
_CLICK_RE = re.compile(r"^(?P<xpath>.+)\s(?P<x>-?\d+),(?P<y>-?\d+)$")
_TYPE_RE = re.compile(r"^(?P<xpath>.+)\s\[(?P<key>(?:\\.|[^\]\\])*),(?P<code>\d+)\]$")
_FRAME_RE = re.compile(r"^(?P<xpath>.+)\s-$")


def parse_command_line(line):
    """Parse one trace line back into a :class:`WarrCommand`."""
    text = line.strip()
    if not text:
        raise TraceFormatError("cannot parse empty trace line")
    try:
        action, rest = text.split(None, 1)
    except ValueError:
        raise TraceFormatError("malformed trace line %r" % line)
    command_type = _COMMAND_TYPES.get(action)
    if command_type is None:
        raise TraceFormatError("unknown WaRR command %r in line %r" % (action, line))
    try:
        middle, elapsed_text = rest.rsplit(None, 1)
        elapsed_ms = int(elapsed_text)
    except ValueError:
        raise TraceFormatError("missing elapsed time in line %r" % line)
    if elapsed_ms < 0:
        raise TraceFormatError(
            "negative elapsed time %d in line %r" % (elapsed_ms, line))

    if command_type in (ClickCommand, DoubleClickCommand):
        match = _CLICK_RE.match(middle)
        if not match:
            raise TraceFormatError("malformed click payload in %r" % line)
        return command_type(match.group("xpath").strip(),
                            x=int(match.group("x")), y=int(match.group("y")),
                            elapsed_ms=elapsed_ms)
    if command_type is DragCommand:
        match = _CLICK_RE.match(middle)
        if not match:
            raise TraceFormatError("malformed drag payload in %r" % line)
        return DragCommand(match.group("xpath").strip(),
                           dx=int(match.group("x")), dy=int(match.group("y")),
                           elapsed_ms=elapsed_ms)
    if command_type is TypeCommand:
        match = _TYPE_RE.match(middle)
        if not match:
            raise TraceFormatError("malformed type payload in %r" % line)
        return TypeCommand(match.group("xpath").strip(),
                           key=_unescape_key(match.group("key")),
                           code=int(match.group("code")),
                           elapsed_ms=elapsed_ms)
    match = _FRAME_RE.match(middle)
    if not match:
        raise TraceFormatError("malformed switchframe payload in %r" % line)
    return SwitchFrameCommand(match.group("xpath").strip(), elapsed_ms=elapsed_ms)
