"""Interaction traces: ordered WaRR Commands plus session metadata.

A trace file is the Figure-4 command listing preceded by ``#!`` header
lines carrying what replay needs to start (the entry URL). Traces are
value objects — WebErr's injectors derive mutated copies, never edit in
place.
"""

from repro.core.commands import WarrCommand, parse_command_line
from repro.util.errors import TraceFormatError

_MAGIC = "#! warr-trace v1"


class WarrTrace:
    """An ordered sequence of WaRR Commands with a start URL."""

    def __init__(self, start_url="", commands=None, label=""):
        self.start_url = start_url
        self.commands = list(commands or [])
        self.label = label

    # -- container protocol --------------------------------------------------

    def __len__(self):
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return WarrTrace(self.start_url, self.commands[index], self.label)
        return self.commands[index]

    def append(self, command):
        if not isinstance(command, WarrCommand):
            raise TypeError("traces hold WarrCommand objects, got %r" % (command,))
        self.commands.append(command)

    # -- derivation ------------------------------------------------------------

    def copy(self, commands=None, label=None):
        """A new trace sharing the start URL."""
        return WarrTrace(
            self.start_url,
            [c.copy() for c in self.commands] if commands is None else commands,
            self.label if label is None else label,
        )

    def with_delays_scaled(self, factor):
        """A copy with every inter-command delay multiplied by ``factor``.

        ``factor=0`` is WebErr's timing stress test: replay "with no wait
        time" (paper, Section V-B).
        """
        if factor < 0:
            raise ValueError("delay factor must be non-negative")
        return self.copy(
            commands=[
                c.copy(elapsed_ms=int(c.elapsed_ms * factor)) for c in self.commands
            ]
        )

    def with_delays_fixed(self, delay_ms):
        """A copy with every delay replaced by a constant."""
        return self.copy(
            commands=[c.copy(elapsed_ms=int(delay_ms)) for c in self.commands]
        )

    # -- measurements ---------------------------------------------------------

    def total_duration_ms(self):
        """Sum of inter-command delays (the session's length)."""
        return sum(c.elapsed_ms for c in self.commands)

    def action_counts(self):
        """Histogram of command actions."""
        counts = {}
        for command in self.commands:
            counts[command.action] = counts.get(command.action, 0) + 1
        return counts

    # -- serialization -----------------------------------------------------------

    def to_text(self):
        """Serialize to the trace file format."""
        lines = [_MAGIC]
        if self.start_url:
            lines.append("#! url %s" % self.start_url)
        if self.label:
            lines.append("#! label %s" % self.label)
        lines.extend(command.to_line() for command in self.commands)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text):
        """Parse a trace file's contents."""
        lines = text.splitlines()
        if not lines or lines[0].strip() != _MAGIC:
            raise TraceFormatError("missing trace header %r" % _MAGIC)
        trace = cls()
        for line in lines[1:]:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#! url "):
                trace.start_url = stripped[len("#! url "):].strip()
                continue
            if stripped.startswith("#! label "):
                trace.label = stripped[len("#! label "):].strip()
                continue
            if stripped.startswith("#"):
                continue
            trace.append(parse_command_line(stripped))
        return trace

    def save(self, path):
        """Write the trace to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_text())

    @classmethod
    def load(cls, path):
        """Read a trace from a file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_text(handle.read())

    def __eq__(self, other):
        """Content equality: same start URL and same command sequence.

        The ``label`` is descriptive metadata (a session name), not
        recorded content, so it does not participate — consistent with
        :meth:`copy`, whose relabelled copies still compare equal, and
        with the wire format, where the label lives in a header comment
        rather than in any command line.
        """
        return (
            isinstance(other, WarrTrace)
            and self.start_url == other.start_url
            and self.commands == other.commands
        )

    def __repr__(self):
        return "WarrTrace(url=%r, %d commands)" % (self.start_url, len(self.commands))
