"""Bounded always-on recording.

The paper's recorder is "always-on ... so that users can submit complete
bug reports" (Section I). Running for days, an unbounded trace would
grow without limit; AUsER only needs the recent past when the user
presses the report button. :class:`RingBufferRecorder` wraps the WaRR
Recorder with a bounded window: it keeps the most recent ``capacity``
commands (dropping the oldest) and can snapshot a replayable trace at
any moment.

A dropped prefix means the trace no longer starts at the session's
first page, so the ring tracks the URL of the page each retained
command ran on and anchors the snapshot at the first retained
command's page.
"""

from collections import deque

from repro.browser.event_handler import InputObserver
from repro.core.recorder import WarrRecorder
from repro.core.trace import WarrTrace


class RingBufferRecorder(InputObserver):
    """Always-on recorder with a bounded command window."""

    def __init__(self, capacity=1000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: (command, page_url) pairs, oldest first.
        self._window = deque()
        self.dropped_count = 0
        self._inner = WarrRecorder()
        self._browser = None

    # -- lifecycle ------------------------------------------------------------

    def attach(self, browser):
        self._browser = browser
        self._inner._browser = browser
        browser.attach_observer(self)
        self._inner.recording = True
        self._inner.begin("")  # anchor the timing baseline
        return self

    def detach(self):
        if self._browser is not None:
            self._browser.detach_observer(self)
        self._inner.recording = False

    # -- observation (delegate, then trim) ---------------------------------

    def _absorb(self, engine):
        """Move commands the inner recorder just produced into the ring."""
        page_url = engine.document.url
        for command in self._inner.trace.commands:
            self._window.append((command, page_url))
            if len(self._window) > self.capacity:
                self._window.popleft()
                self.dropped_count += 1
        self._inner.trace.commands = []

    def on_mouse_press(self, engine, event, target):
        self._inner.on_mouse_press(engine, event, target)
        self._absorb(engine)

    def on_key(self, engine, event, target):
        self._inner.on_key(engine, event, target)
        self._absorb(engine)

    def on_drag(self, engine, event, target):
        self._inner.on_drag(engine, event, target)
        self._absorb(engine)

    # -- snapshots ---------------------------------------------------------------

    def __len__(self):
        return len(self._window)

    @property
    def overhead_samples_us(self):
        return self._inner.overhead_samples_us

    def mean_overhead_us(self):
        return self._inner.mean_overhead_us()

    def snapshot(self, label="ring snapshot"):
        """A replayable trace of the retained window.

        Anchored at the page the oldest retained command ran on; its
        elapsed time is zeroed (the gap to the dropped prefix is
        meaningless).
        """
        if not self._window:
            return WarrTrace(label=label)
        commands = [command.copy() for command, _ in self._window]
        commands[0] = commands[0].copy(elapsed_ms=0)
        start_url = self._window[0][1]
        return WarrTrace(start_url=start_url, commands=commands, label=label)
