"""The WaRR Recorder.

An :class:`~repro.browser.event_handler.InputObserver` embedded at the
WebKit layer (paper, Section IV-A): it sees every mouse press, drag, and
keystroke *before* the page's own handlers run, needs no modification to
web applications, and keeps recording across navigations because it is
attached to the browser, not to a page.

Paper-faithful details implemented here:

- **Shift combining** (Section IV-B): pressing Shift+h registers two
  keystrokes in Chrome; logging Shift is unnecessary, so the recorder
  drops the bare Shift event and logs only the combined ``[H,72]``.
  Other control keys (Control, Alt, ...) *are* logged with their codes.
- **Click positions** are logged as backup element identification.
- **Frame tracking**: when consecutive actions target different frames
  the recorder emits a ``switchframe`` command (see
  :mod:`repro.core.commands`).
- **Overhead accounting**: every logging call is timed with the real
  (wall) clock; :attr:`overhead_samples_us` feeds the Section-VI
  user-experience benchmark.
"""

import time

from repro import telemetry
from repro.browser.event_handler import InputObserver
from repro.telemetry.tracks import RECORDER_TRACK
from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
    DEFAULT_FRAME,
)
from repro.core.trace import WarrTrace
from repro.events.keys import KEY_SHIFT
from repro.xpath.generator import xpath_for_element


class WarrRecorder(InputObserver):
    """Records user actions as WaRR Commands."""

    def __init__(self):
        self.trace = WarrTrace()
        self.recording = False
        self._browser = None
        self._last_action_time = None
        self._current_frame_engine = None
        #: Wall-clock microseconds spent logging, one sample per action.
        self.overhead_samples_us = []

    # -- lifecycle ------------------------------------------------------------

    def attach(self, browser):
        """Embed the recorder into a browser and start recording."""
        self._browser = browser
        browser.attach_observer(self)
        self.recording = True
        return self

    def detach(self):
        """Stop recording and unhook from the browser."""
        if self._browser is not None:
            self._browser.detach_observer(self)
        self.recording = False

    def begin(self, start_url, label=""):
        """Reset state and start a fresh trace anchored at ``start_url``.

        The first command's elapsed time is measured from this call, so
        an initial user pause (waiting for a page to become ready) is
        part of the trace and is reproduced by timing-accurate replay.
        """
        self.trace = WarrTrace(start_url=start_url, label=label)
        self._last_action_time = (
            self._browser.clock.now() if self._browser is not None else None
        )
        self._current_frame_engine = None
        return self

    # -- InputObserver hooks (the WebCore::EventHandler call sites) --------

    def on_mouse_press(self, engine, event, target):
        if not self.recording:
            return
        started = time.perf_counter()
        elapsed = self._elapsed(event.timestamp)
        self._track_frame(engine, event.timestamp)
        xpath = str(xpath_for_element(target, engine.document))
        command_type = DoubleClickCommand if event.detail >= 2 else ClickCommand
        self.trace.append(
            command_type(xpath, x=event.client_x, y=event.client_y,
                         elapsed_ms=elapsed)
        )
        self._record_overhead(started)

    def on_key(self, engine, event, target):
        if not self.recording:
            return
        if event.key_code == KEY_SHIFT:
            # Combined with the following printable key (paper, IV-B).
            return
        started = time.perf_counter()
        elapsed = self._elapsed(event.timestamp)
        self._track_frame(engine, event.timestamp)
        xpath = str(xpath_for_element(target, engine.document))
        self.trace.append(
            TypeCommand(xpath, key=event.key, code=event.key_code,
                        elapsed_ms=elapsed)
        )
        self._record_overhead(started)

    def on_drag(self, engine, event, target):
        if not self.recording:
            return
        started = time.perf_counter()
        elapsed = self._elapsed(event.timestamp)
        self._track_frame(engine, event.timestamp)
        xpath = str(xpath_for_element(target, engine.document))
        self.trace.append(
            DragCommand(xpath, dx=event.dx, dy=event.dy, elapsed_ms=elapsed)
        )
        self._record_overhead(started)

    # -- internals ------------------------------------------------------------

    def _elapsed(self, timestamp):
        """Virtual ms since the previous recorded action."""
        if self._last_action_time is None:
            elapsed = 0
        else:
            elapsed = max(0, int(round(timestamp - self._last_action_time)))
        self._last_action_time = timestamp
        return elapsed

    def _track_frame(self, engine, timestamp):
        """Emit switchframe commands when interaction changes frames."""
        if engine.parent is None:
            # Main frame.
            if (self._current_frame_engine is not None
                    and self._current_frame_engine.parent is not None):
                self.trace.append(SwitchFrameCommand(DEFAULT_FRAME, elapsed_ms=0))
            self._current_frame_engine = engine
            return
        if engine is not self._current_frame_engine:
            iframe_element = self._find_iframe_element(engine)
            if iframe_element is not None:
                xpath = str(xpath_for_element(iframe_element,
                                              engine.parent.document))
                self.trace.append(SwitchFrameCommand(xpath, elapsed_ms=0))
            self._current_frame_engine = engine

    @staticmethod
    def _find_iframe_element(engine):
        parent = engine.parent
        if parent is None:
            return None
        for element, child in parent.frames.items():
            if child is engine:
                return element
        return None

    def _record_overhead(self, started):
        self.overhead_samples_us.append((time.perf_counter() - started) * 1e6)
        tracer = telemetry.current()
        if tracer is not None and tracer.wants("recorder"):
            # The span covers exactly the logging work the overhead
            # benchmark measures: frame tracking, XPath generation, and
            # the trace append. The command line is deferred (bound
            # method in the args slot): it is only formatted at export.
            command = self.trace.commands[-1] if len(self.trace) else None
            tracer.complete_between(
                "record.command", started, track=RECORDER_TRACK,
                cat="recorder",
                args={"line": command.to_line if command else None})

    # -- reporting ---------------------------------------------------------------

    def mean_overhead_us(self):
        """Average per-action logging cost in microseconds."""
        if not self.overhead_samples_us:
            return 0.0
        return sum(self.overhead_samples_us) / len(self.overhead_samples_us)

    def __repr__(self):
        return "WarrRecorder(%d commands, recording=%r)" % (
            len(self.trace), self.recording,
        )
