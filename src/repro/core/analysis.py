"""Trace analytics.

Developers triaging AUsER reports want a quick read on a session before
replaying it: how long it was, what the user did, how fast they typed,
where the long pauses sit. ``analyze_trace`` computes those statistics;
the CLI's ``inspect`` command prints them.
"""

from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(int(len(sorted_values) * fraction), len(sorted_values) - 1)
    return sorted_values[index]


class TraceStats:
    """Computed statistics for one trace."""

    def __init__(self, trace):
        self.command_count = len(trace)
        self.total_duration_ms = trace.total_duration_ms()
        self.action_counts = trace.action_counts()
        self.distinct_targets = len({c.xpath for c in trace})
        self.frame_switches = sum(
            1 for c in trace if isinstance(c, SwitchFrameCommand))

        delays = sorted(c.elapsed_ms for c in trace)
        self.median_delay_ms = _percentile(delays, 0.5)
        self.p90_delay_ms = _percentile(delays, 0.9)
        self.longest_pause_ms = delays[-1] if delays else 0

        keystrokes = [c for c in trace if isinstance(c, TypeCommand)]
        self.keystroke_count = len(keystrokes)
        typing_time_ms = sum(c.elapsed_ms for c in keystrokes)
        if typing_time_ms > 0:
            # Words per minute at the canonical 5 chars/word.
            self.typing_speed_wpm = (self.keystroke_count / 5.0) / (
                typing_time_ms / 60_000.0)
        else:
            self.typing_speed_wpm = 0.0
        self.typed_text = "".join(
            c.key for c in keystrokes if len(c.key) == 1)

        self.click_count = sum(
            1 for c in trace
            if isinstance(c, ClickCommand)
            and not isinstance(c, DoubleClickCommand))
        self.double_click_count = sum(
            1 for c in trace if isinstance(c, DoubleClickCommand))
        self.drag_count = sum(
            1 for c in trace if isinstance(c, DragCommand))

    def lines(self):
        """Human-readable report lines."""
        out = [
            "commands:          %d" % self.command_count,
            "session duration:  %.1f s (virtual)"
            % (self.total_duration_ms / 1000.0),
            "actions:           %s" % ", ".join(
                "%s=%d" % item for item in sorted(self.action_counts.items())),
            "distinct targets:  %d" % self.distinct_targets,
            "median delay:      %d ms" % self.median_delay_ms,
            "p90 delay:         %d ms" % self.p90_delay_ms,
            "longest pause:     %d ms" % self.longest_pause_ms,
        ]
        if self.keystroke_count:
            out.append("typing speed:      %.0f wpm over %d keystrokes"
                       % (self.typing_speed_wpm, self.keystroke_count))
        if self.frame_switches:
            out.append("frame switches:    %d" % self.frame_switches)
        return out

    def __repr__(self):
        return "TraceStats(%d commands, %.1fs)" % (
            self.command_count, self.total_duration_ms / 1000.0)


def analyze_trace(trace):
    """Compute :class:`TraceStats` for a trace."""
    return TraceStats(trace)
