"""Progressive XPath relaxation.

The replay challenge the paper highlights (Section IV-C): element
properties differ between record time and replay time — GMail, for
example, regenerates ``id`` attributes on every load — so the recorded
XPath no longer matches. WaRR "employs an automatic,
application-independent, and progressive relaxation of an element's
XPath expression", guided by heuristics that

1. remove XPath attributes (e.g. ``id``),
2. maintain only certain attributes (e.g. only ``name``), and
3. discard a prefix of the expression.

The relaxation engine generates candidates in that order, combined with
progressively longer prefix discards, and resolves against the live
document: the original expression is always tried first (so replay is
exact and timing-accurate when the DOM is stable), and the first
candidate with a *unique* match wins. If no candidate is unique, the
first match of the least-relaxed ambiguous candidate is used as a last
resort.
"""

from repro.util.errors import ElementNotFoundError
from repro.xpath.ast import (
    AttributeEquals,
    AttributeExists,
    PositionPredicate,
    Path,
    Step,
    TextEquals,
)
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath

#: Attributes kept by the "maintain only certain attributes" heuristic.
STABLE_ATTRIBUTES = frozenset(["name", "type"])

#: Attributes dropped by the "remove attributes" heuristic — these are
#: the ones applications regenerate.
VOLATILE_ATTRIBUTES = frozenset(["id", "class", "style"])


def _strip_volatile(step):
    """Heuristic 1: drop predicates on volatile attributes."""
    kept = []
    for predicate in step.predicates:
        if isinstance(predicate, (AttributeEquals, AttributeExists)):
            if predicate.name in VOLATILE_ATTRIBUTES:
                continue
        kept.append(predicate)
    return step.copy(predicates=kept)


def _only_stable(step):
    """Heuristic 2: keep only name-like attribute and text predicates."""
    kept = []
    for predicate in step.predicates:
        if isinstance(predicate, (AttributeEquals, AttributeExists)):
            if predicate.name in STABLE_ATTRIBUTES:
                kept.append(predicate)
        elif isinstance(predicate, TextEquals):
            kept.append(predicate)
    return step.copy(predicates=kept)


def _keep_position_only(step):
    """Deepest relaxation: keep only positional predicates."""
    kept = [p for p in step.predicates if isinstance(p, PositionPredicate)]
    return step.copy(predicates=kept)


def _suffix(path, drop):
    """Heuristic 3: discard the first ``drop`` steps.

    The new leading step becomes descendant-anchored, turning
    ``//td/div[@id="x"]`` into ``//div[@id="x"]``.
    """
    steps = [s.copy() for s in path.steps[drop:]]
    steps[0] = steps[0].copy(axis=Step.DESCENDANT)
    return Path(steps)


def relax_candidates(expression):
    """Yield (description, Path) candidates, least-relaxed first."""
    original = parse_xpath(expression)
    seen = set()

    def emit(description, path):
        rendered = path.to_xpath()
        if rendered in seen:
            return None
        seen.add(rendered)
        return (description, path)

    candidates = []
    first = emit("original", original)
    if first:
        candidates.append(first)

    transforms = [
        ("drop volatile attributes", _strip_volatile),
        ("keep only stable attributes", _only_stable),
        ("positional only", _keep_position_only),
    ]

    for drop in range(len(original.steps)):
        base = original if drop == 0 else _suffix(original, drop)
        prefix_note = "" if drop == 0 else " after discarding %d-step prefix" % drop
        if drop > 0:
            candidate = emit("discard prefix (%d steps)" % drop, base)
            if candidate:
                candidates.append(candidate)
        for note, transform in transforms:
            relaxed = Path([
                transform(step) if index == len(base.steps) - 1 else step.copy()
                for index, step in enumerate(base.steps)
            ])
            candidate = emit(note + prefix_note, relaxed)
            if candidate:
                candidates.append(candidate)
    return candidates


class RelaxationEngine:
    """Resolves a recorded XPath against a live document."""

    def __init__(self, enabled=True):
        self.enabled = enabled
        #: (expression, used_description) log for reporting/ablation.
        self.resolutions = []

    def resolve(self, expression, document):
        """Find the element ``expression`` points at in ``document``.

        Returns (element, description-of-heuristic-used). Raises
        :class:`ElementNotFoundError` if nothing matches any candidate.
        """
        if not self.enabled:
            matches = evaluate(expression, document)
            if not matches:
                raise ElementNotFoundError(
                    "no element matches %r (relaxation disabled)" % expression
                )
            self.resolutions.append((expression, "original"))
            return matches[0], "original"

        fallback = None
        for description, path in relax_candidates(expression):
            matches = evaluate(path, document)
            if len(matches) == 1:
                self.resolutions.append((expression, description))
                return matches[0], description
            if matches and fallback is None:
                fallback = (matches[0], description + " (ambiguous)")
        if fallback is not None:
            self.resolutions.append((expression, fallback[1]))
            return fallback
        raise ElementNotFoundError(
            "no element matches %r even after relaxation" % expression
        )

    def relaxed_count(self):
        """How many resolutions needed a non-original candidate."""
        return sum(1 for _, used in self.resolutions if used != "original")
