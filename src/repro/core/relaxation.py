"""Progressive XPath relaxation.

The replay challenge the paper highlights (Section IV-C): element
properties differ between record time and replay time — GMail, for
example, regenerates ``id`` attributes on every load — so the recorded
XPath no longer matches. WaRR "employs an automatic,
application-independent, and progressive relaxation of an element's
XPath expression", guided by heuristics that

1. remove XPath attributes (e.g. ``id``),
2. maintain only certain attributes (e.g. only ``name``), and
3. discard a prefix of the expression.

The relaxation engine generates candidates in that order, combined with
progressively longer prefix discards, and resolves against the live
document: the original expression is always tried first (so replay is
exact and timing-accurate when the DOM is stable), and the first
candidate with a *unique* match wins. If no candidate is unique, the
first match of the least-relaxed ambiguous candidate is used as a last
resort.
"""

from collections import OrderedDict

from repro import perf
from repro.dom.node import Document
from repro.util.errors import ElementNotFoundError
from repro.xpath.ast import (
    AttributeEquals,
    AttributeExists,
    ContainsPredicate,
    PositionPredicate,
    Path,
    Step,
    TextEquals,
)
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath

#: Attributes kept by the "maintain only certain attributes" heuristic.
STABLE_ATTRIBUTES = frozenset(["name", "type"])

#: Attributes dropped by the "remove attributes" heuristic — these are
#: the ones applications regenerate.
VOLATILE_ATTRIBUTES = frozenset(["id", "class", "style"])


def _strip_volatile(step):
    """Heuristic 1: drop predicates on volatile attributes."""
    kept = []
    for predicate in step.predicates:
        if isinstance(predicate, (AttributeEquals, AttributeExists)):
            if predicate.name in VOLATILE_ATTRIBUTES:
                continue
        kept.append(predicate)
    return step.copy(predicates=kept)


def _only_stable(step):
    """Heuristic 2: keep only name-like attribute and text predicates."""
    kept = []
    for predicate in step.predicates:
        if isinstance(predicate, (AttributeEquals, AttributeExists)):
            if predicate.name in STABLE_ATTRIBUTES:
                kept.append(predicate)
        elif isinstance(predicate, TextEquals):
            kept.append(predicate)
    return step.copy(predicates=kept)


def _keep_position_only(step):
    """Deepest relaxation: keep only positional predicates."""
    kept = [p for p in step.predicates if isinstance(p, PositionPredicate)]
    return step.copy(predicates=kept)


def _suffix(path, drop):
    """Heuristic 3: discard the first ``drop`` steps.

    The new leading step becomes descendant-anchored, turning
    ``//td/div[@id="x"]`` into ``//div[@id="x"]``.
    """
    steps = [s.copy() for s in path.steps[drop:]]
    steps[0] = steps[0].copy(axis=Step.DESCENDANT)
    return Path(steps)


#: Per-expression candidate cache: building the relaxation ladder
#: parses, transforms, and re-renders the path several times — work
#: that is identical every time the same recorded locator goes stale.
_CANDIDATE_CACHE = OrderedDict()
_CANDIDATE_CACHE_MAX = 512


@perf.register_cache_clearer
def _clear_candidate_cache():
    _CANDIDATE_CACHE.clear()


def relax_candidates(expression):
    """Return (description, Path) candidates, least-relaxed first."""
    if not perf.fast_path_enabled():
        return _build_candidates(expression)
    key = expression if isinstance(expression, str) else expression.to_xpath()
    try:
        cached = _CANDIDATE_CACHE[key]
    except KeyError:
        perf.record("relax.candidates", hit=False)
        cached = tuple(_build_candidates(expression))
        _CANDIDATE_CACHE[key] = cached
        if len(_CANDIDATE_CACHE) > _CANDIDATE_CACHE_MAX:
            _CANDIDATE_CACHE.popitem(last=False)
    else:
        _CANDIDATE_CACHE.move_to_end(key)
        perf.record("relax.candidates", hit=True)
    return list(cached)


def _build_candidates(expression):
    original = parse_xpath(expression)
    seen = set()

    def emit(description, path):
        rendered = path.to_xpath()
        if rendered in seen:
            return None
        seen.add(rendered)
        return (description, path)

    candidates = []
    first = emit("original", original)
    if first:
        candidates.append(first)

    transforms = [
        ("drop volatile attributes", _strip_volatile),
        ("keep only stable attributes", _only_stable),
        ("positional only", _keep_position_only),
    ]

    for drop in range(len(original.steps)):
        base = original if drop == 0 else _suffix(original, drop)
        prefix_note = "" if drop == 0 else " after discarding %d-step prefix" % drop
        if drop > 0:
            candidate = emit("discard prefix (%d steps)" % drop, base)
            if candidate:
                candidates.append(candidate)
        for note, transform in transforms:
            relaxed = Path([
                transform(step) if index == len(base.steps) - 1 else step.copy()
                for index, step in enumerate(base.steps)
            ])
            candidate = emit(note + prefix_note, relaxed)
            if candidate:
                candidates.append(candidate)
    return candidates


class RelaxationEngine:
    """Resolves a recorded XPath against a live document."""

    def __init__(self, enabled=True):
        self.enabled = enabled
        #: (expression, used_description) log for reporting/ablation.
        self.resolutions = []
        #: expression key -> (context, generations, element, description).
        #: ``generations`` records the document's (structure, attribute,
        #: text) counters at resolution time, masked down to the kinds
        #: the expression's predicates can observe — so an id-locator
        #: stays memoized across a burst of keystrokes, while any
        #: element insertion/removal (including detaching the memoized
        #: element) always invalidates the entry.
        self._memo = {}

    def resolve(self, expression, document):
        """Find the element ``expression`` points at in ``document``.

        ``document`` is the resolution context: a Document, or an
        Element scoping the search to a subtree (src-less iframes).
        Returns (element, description-of-heuristic-used). Raises
        :class:`ElementNotFoundError` if nothing matches any candidate.
        """
        if not self.enabled:
            matches = evaluate(expression, document)
            if not matches:
                raise ElementNotFoundError(
                    "no element matches %r (relaxation disabled)" % expression
                )
            self.resolutions.append((expression, "original"))
            return matches[0], "original"

        if not perf.fast_path_enabled():
            element, description = self._resolve_by_scan(expression, document)
            self.resolutions.append((expression, description))
            return element, description

        key = expression if isinstance(expression, str) else expression.to_xpath()
        generations = self._observed_generations(expression, document)
        if generations is not None:
            hit = self._memo.get(key)
            if hit is not None and hit[0] is document and hit[1] == generations:
                perf.record("relax.resolve", hit=True)
                self.resolutions.append((expression, hit[3]))
                return hit[2], hit[3]
            perf.record("relax.resolve", hit=False)

        # The common, DOM-stable case: the original expression still
        # matches uniquely — no relaxation ladder is built at all.
        matches = evaluate(expression, document)
        if len(matches) == 1:
            element, description = matches[0], "original"
        else:
            fallback = (matches[0], "original (ambiguous)") if matches else None
            element, description = self._resolve_by_scan(
                expression, document, skip_original=True, fallback=fallback
            )
        if generations is not None:
            self._memo[key] = (document, generations, element, description)
        self.resolutions.append((expression, description))
        return element, description

    def _resolve_by_scan(self, expression, document, skip_original=False,
                         fallback=None):
        """Walk the relaxation ladder; first unique match wins."""
        for description, path in relax_candidates(expression):
            if skip_original and description == "original":
                continue
            matches = evaluate(path, document)
            if len(matches) == 1:
                return matches[0], description
            if matches and fallback is None:
                fallback = (matches[0], description + " (ambiguous)")
        if fallback is not None:
            return fallback
        raise ElementNotFoundError(
            "no element matches %r even after relaxation" % expression
        )

    @staticmethod
    def _observed_generations(expression, context):
        """The document generations this expression's result depends on.

        Structure is always observed (it decides which elements exist
        and their positions); attribute/text counters only when some
        predicate reads them. Every relaxation candidate carries a
        *subset* of the original's predicates, so masking on the
        original expression is conservative for the whole ladder.
        Returns None when the context has no owning Document (memoizing
        would be unsafe — there is no counter to invalidate on).
        """
        document = context if isinstance(context, Document) \
            else context.owner_document
        if not isinstance(document, Document):
            return None
        observes_attributes = False
        observes_text = False
        for step in parse_xpath(expression).steps:
            for predicate in step.predicates:
                if isinstance(predicate, (AttributeEquals, AttributeExists)):
                    observes_attributes = True
                elif isinstance(predicate, TextEquals):
                    observes_text = True
                elif isinstance(predicate, ContainsPredicate):
                    if predicate.target == "text()":
                        observes_text = True
                    else:
                        observes_attributes = True
        return (
            document.structure_generation,
            document.attribute_generation if observes_attributes else -1,
            document.text_generation if observes_text else -1,
        )

    def relaxed_count(self):
        """How many resolutions needed a non-original candidate."""
        return sum(1 for _, used in self.resolutions if used != "original")
