"""WebDriver: the common browser-automation API.

"WebDriver is a browser interaction automation tool that controls
various browsers through a common API, while ChromeDriver is a WebDriver
implementation tailored to Chrome" (paper, Section IV-C). This facade
exposes the operations the WaRR Replayer needs — navigate, find, click,
double-click, type, drag, frame switching — and delegates to the
ChromeDriver master/client machinery.

Element resolution is delegated to a
:class:`~repro.session.policies.LocatorPolicy` (exact → implicit wait →
relaxation); the driver holds the per-session state the policy needs
(the relaxation engine with its resolution log), the policy holds the
strategy.
"""

from repro.core.chromedriver import ChromeDriverConfig, ChromeDriverMaster
from repro.session.policies import LocatorPolicy


class WebDriver:
    """Drives one browser through ChromeDriver.

    Either pass a ready ``locator`` policy, or the legacy knobs:
    ``relaxation`` toggles progressive XPath relaxation, and
    ``implicit_wait_ms`` — when a locator matches nothing — lets
    simulated time pass (AJAX responses and timers fire) and retries the
    *exact* expression until the deadline before falling back to
    relaxation, the standard WebDriver answer to dynamically loaded
    content.
    """

    def __init__(self, browser, config=None, relaxation=True,
                 implicit_wait_ms=0.0, locator=None):
        self.browser = browser
        self.master = ChromeDriverMaster(
            browser, config if config is not None else ChromeDriverConfig.warr()
        )
        self.locator = locator if locator is not None else LocatorPolicy(
            relaxation=relaxation, implicit_wait_ms=implicit_wait_ms)
        #: Per-session relaxation state (candidate memo, resolution log).
        self.relaxation = self.locator.new_relaxation_engine()
        self._tab = None

    @property
    def implicit_wait_ms(self):
        return self.locator.implicit_wait_ms

    # -- navigation ---------------------------------------------------------

    def get(self, url):
        """Open ``url`` (reusing one tab, like a WebDriver session)."""
        if self._tab is None:
            self._tab = self.browser.new_tab(url)
        else:
            self._tab.navigate(url)
        return self._tab

    @property
    def tab(self):
        if self._tab is None:
            raise RuntimeError("call get(url) before driving the browser")
        return self._tab

    @property
    def has_session(self):
        """True once get() opened a tab."""
        return self._tab is not None

    # -- element location -----------------------------------------------------

    def _locate(self, xpath):
        """Resolve a locator through the policy chain."""
        location = self.locator.resolve(self, xpath)
        return location.client, location.element

    # -- element operations -------------------------------------------------

    def find_element(self, xpath):
        """Locate an element in the active frame (with relaxation)."""
        _, element = self._locate(xpath)
        return element

    def click(self, xpath):
        client, element = self._locate(xpath)
        client.click(element)
        return element

    def click_at(self, x, y):
        self.master.active_client.click_at(x, y)

    def double_click(self, xpath):
        client, element = self._locate(xpath)
        client.double_click(element)
        return element

    def send_key(self, xpath, key, code):
        client, element = self._locate(xpath)
        client.send_key(element, key, code)
        return element

    def send_keys(self, xpath, text):
        """Type a whole string (driver convenience, not used by replay)."""
        from repro.events.keys import virtual_key_code

        client, element = self._locate(xpath)
        for char in text:
            client.send_key(element, char, virtual_key_code(char))
        return element

    def drag(self, xpath, dx, dy):
        client, element = self._locate(xpath)
        client.drag(element, dx, dy)
        return element

    # -- frames ------------------------------------------------------------

    def switch_to_frame(self, iframe_xpath):
        return self.master.switch_to_frame(iframe_xpath, self.relaxation)

    def switch_to_default(self):
        return self.master.switch_to_default()

    # -- timing ------------------------------------------------------------

    def wait(self, duration_ms):
        """Let simulated time pass (timers and AJAX fire)."""
        self.browser.event_loop.run_for(duration_ms)

    def __repr__(self):
        return "WebDriver(%r)" % (self.master,)
