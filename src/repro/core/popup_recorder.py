"""Popup interaction logging — the paper's proposed fix.

Section IV-D: "WaRR cannot handle pop-ups because user interaction
events that happen on such widgets are not routed through to WebKit. A
solution we are considering is to insert logging functionality in the
browser code that handles pop-ups." This module implements that
solution: :class:`PopupRecorder` instruments the browser-process popup
path (``Browser.show_popup`` / ``PopupWidget.click_button``), producing
a :class:`PopupLog` of the dialogs shown and buttons clicked, and
:func:`replay_popup_log` answers the same dialogs identically during
replay.

Popup events are kept in a side log rather than in the WaRR Command
trace: they have no XPath target (they are native widgets, not DOM
elements), so forcing them into the command format would be a lie. The
log carries enough — title, buttons, chosen button, virtual timestamp —
to deterministically answer the same dialogs.
"""


class PopupEvent:
    """One popup lifecycle: shown, then (maybe) answered."""

    def __init__(self, title, buttons, shown_at):
        self.title = title
        self.buttons = list(buttons)
        self.shown_at = shown_at
        self.clicked = None
        self.clicked_at = None

    @property
    def answered(self):
        return self.clicked is not None

    def __repr__(self):
        answer = " -> %r" % self.clicked if self.answered else " (unanswered)"
        return "PopupEvent(%r%s)" % (self.title, answer)


class PopupLog:
    """Ordered popup interactions of one session."""

    def __init__(self):
        self.events = []

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def answered_events(self):
        return [event for event in self.events if event.answered]


class PopupRecorder:
    """Instruments the browser-process popup code path."""

    def __init__(self):
        self.log = PopupLog()
        self._browser = None
        self._original_show_popup = None

    def attach(self, browser):
        """Wrap ``browser.show_popup`` with logging (the paper's fix)."""
        if self._browser is not None:
            raise RuntimeError("recorder already attached")
        self._browser = browser
        self._original_show_popup = browser.show_popup

        def logged_show_popup(title, buttons):
            popup = self._original_show_popup(title, buttons)
            event = PopupEvent(title, buttons, browser.clock.now())
            self.log.events.append(event)
            original_click = popup.click_button

            def logged_click(label):
                event.clicked = label
                event.clicked_at = browser.clock.now()
                return original_click(label)

            popup.click_button = logged_click
            return popup

        browser.show_popup = logged_show_popup
        return self

    def detach(self):
        """Restore the un-instrumented popup path."""
        if self._browser is not None:
            self._browser.show_popup = self._original_show_popup
            self._browser = None
            self._original_show_popup = None


def replay_popup_log(browser, log):
    """Auto-answer replayed popups with the recorded choices.

    Wraps ``browser.show_popup`` so that each dialog shown during replay
    is immediately answered with the button the user chose during
    recording (matched in order). Returns the wrapper's state object so
    callers can check how many answers were consumed.
    """
    answers = [event for event in log.answered_events()]
    state = {"consumed": 0, "unmatched": 0}
    original_show_popup = browser.show_popup

    def answering_show_popup(title, buttons):
        popup = original_show_popup(title, buttons)
        index = state["consumed"]
        if index < len(answers) and answers[index].title == title:
            state["consumed"] += 1
            popup.click_button(answers[index].clicked)
        else:
            state["unmatched"] += 1
        return popup

    browser.show_popup = answering_show_popup
    return state
