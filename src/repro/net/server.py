"""Simulated web servers and the network that routes to them.

A :class:`Network` owns the host → server table and the latency model.
Navigation uses :meth:`Network.fetch` (synchronous from the browser's
point of view — the load itself is a unit step); page scripts use
:meth:`Network.fetch_async`, which schedules the response on the event
loop after the simulated round-trip latency. That delay is what creates
the window for timing errors.
"""

from repro.net.http import HttpRequest, HttpResponse
from repro.util.errors import NetworkError


class WebServer:
    """Interface every simulated application server implements."""

    def handle(self, request):
        """Return an :class:`HttpResponse` for ``request``."""
        raise NotImplementedError


class RouteServer(WebServer):
    """A server dispatching on (method, path) routes.

    Handlers receive the request and return an ``HttpResponse`` (or a
    plain string, treated as HTML). Paths may end with ``*`` to match a
    prefix.
    """

    def __init__(self):
        self._routes = []

    def route(self, path, method="GET"):
        """Decorator registering a handler for ``method path``."""
        def decorator(handler):
            self.add_route(path, handler, method)
            return handler
        return decorator

    def add_route(self, path, handler, method="GET"):
        self._routes.append((method.upper(), path, handler))

    def handle(self, request):
        for method, path, handler in self._routes:
            if method != request.method:
                continue
            if path.endswith("*"):
                if not request.path.startswith(path[:-1]):
                    continue
            elif request.path != path:
                continue
            result = handler(request)
            if isinstance(result, HttpResponse):
                return result
            return HttpResponse.html(str(result))
        return HttpResponse.not_found("no route for %s %s" % (request.method, request.path))


class ExchangeRecord:
    """One request/response pair observed on the wire.

    ``visible_body`` is what an intercepting proxy can read: for HTTPS
    exchanges the payload is opaque (the paper's argument against
    proxy-based recorders like Fiddler).
    """

    def __init__(self, request, response, timestamp):
        self.request = request
        self.response = response
        self.timestamp = timestamp

    @property
    def is_secure(self):
        return self.request.is_secure

    @property
    def visible_body(self):
        if self.is_secure:
            return "<encrypted:%d bytes>" % len(self.response.body)
        return self.response.body


class Network:
    """Routes requests to registered servers with simulated latency."""

    def __init__(self, event_loop, default_latency_ms=50.0):
        self.event_loop = event_loop
        self.default_latency_ms = default_latency_ms
        self._servers = {}
        self._latencies = {}
        #: Wire log every exchange lands in; baselines tap this.
        self.exchange_log = []

    @property
    def clock(self):
        return self.event_loop.clock

    def register(self, host, server, latency_ms=None):
        """Serve ``host`` with ``server``; optional per-host latency."""
        self._servers[host.lower()] = server
        if latency_ms is not None:
            self._latencies[host.lower()] = latency_ms
        return server

    def latency_for(self, host):
        return self._latencies.get(host.lower(), self.default_latency_ms)

    def _dispatch(self, request):
        server = self._servers.get(request.host)
        if server is None:
            raise NetworkError("no server registered for host %r" % request.host)
        response = server.handle(request)
        self.exchange_log.append(
            ExchangeRecord(request, response, self.clock.now())
        )
        return response

    def fetch(self, url, method="GET", body=""):
        """Synchronous fetch (navigation): latency advances the clock."""
        request = HttpRequest(url, method=method, body=body)
        self.clock.advance(self.latency_for(request.host))
        return self._dispatch(request)

    def fetch_async(self, url, callback, method="GET", body=""):
        """Asynchronous fetch (XHR): callback fires after the latency."""
        request = HttpRequest(url, method=method, body=body)

        def deliver():
            try:
                response = self._dispatch(request)
            except NetworkError:
                response = HttpResponse(body="network error", status=502,
                                        content_type="text/plain")
            callback(response)

        return self.event_loop.call_later(self.latency_for(request.host), deliver)
