"""Simulated web servers and the network that routes to them.

A :class:`Network` owns the host → server table and the latency model.
Navigation uses :meth:`Network.fetch` (synchronous from the browser's
point of view — the load itself is a unit step); page scripts use
:meth:`Network.fetch_async`, which schedules the response on the event
loop after the simulated round-trip latency. That delay is what creates
the window for timing errors.
"""

import zlib
from collections import deque

from repro import chaos
from repro.net.http import HttpRequest, HttpResponse
from repro.net.transport import LiveTransport
from repro.util.backoff import BackoffSchedule
from repro.util.errors import (
    NetworkError,
    NetworkFaultError,
    NetworkTimeoutError,
    TapeMissError,
)

#: Default exchange-log capacity. Far above what any single session
#: produces (the longest bench session is a few thousand exchanges), so
#: baseline recorders see every exchange exactly as before; long batch
#: and chaos-matrix runs stop accumulating memory without bound.
DEFAULT_LOG_CAPACITY = 4096


class WebServer:
    """Interface every simulated application server implements."""

    def handle(self, request):
        """Return an :class:`HttpResponse` for ``request``."""
        raise NotImplementedError


class RouteServer(WebServer):
    """A server dispatching on (method, path) routes.

    Handlers receive the request and return an ``HttpResponse`` (or a
    plain string, treated as HTML). Paths may end with ``*`` to match a
    prefix.
    """

    def __init__(self):
        self._routes = []

    def route(self, path, method="GET"):
        """Decorator registering a handler for ``method path``."""
        def decorator(handler):
            self.add_route(path, handler, method)
            return handler
        return decorator

    def add_route(self, path, handler, method="GET"):
        self._routes.append((method.upper(), path, handler))

    def handle(self, request):
        for method, path, handler in self._routes:
            if method != request.method:
                continue
            if path.endswith("*"):
                if not request.path.startswith(path[:-1]):
                    continue
            elif request.path != path:
                continue
            result = handler(request)
            if isinstance(result, HttpResponse):
                return result
            return HttpResponse.html(str(result))
        return HttpResponse.not_found("no route for %s %s" % (request.method, request.path))


class ExchangeRecord:
    """One request/response pair observed on the wire.

    ``visible_body`` is what an intercepting proxy can read: for HTTPS
    exchanges the payload is opaque (the paper's argument against
    proxy-based recorders like Fiddler).
    """

    def __init__(self, request, response, timestamp):
        self.request = request
        self.response = response
        self.timestamp = timestamp

    @property
    def is_secure(self):
        return self.request.is_secure

    @property
    def visible_body(self):
        if self.is_secure:
            return "<encrypted:%d bytes>" % len(self.response.body)
        return self.response.body


class ExchangeLog:
    """Bounded wire log: the newest ``capacity`` exchanges, list-like.

    Supports ``len``, integer and slice indexing, and iteration — the
    surface the baseline recorders use — while evicting the oldest
    record once full. ``total`` counts every exchange ever appended;
    ``dropped`` is how many eviction discarded, so long-running batch
    and chaos-matrix campaigns can report the truncation instead of
    silently growing without bound.
    """

    def __init__(self, capacity=DEFAULT_LOG_CAPACITY):
        if capacity < 1:
            raise ValueError("exchange log capacity must be >= 1")
        self.capacity = int(capacity)
        self._records = deque(maxlen=self.capacity)
        self.total = 0

    def append(self, record):
        self.total += 1
        self._records.append(record)

    @property
    def dropped(self):
        return self.total - len(self._records)

    def __len__(self):
        return len(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._records)[index]
        return self._records[index]

    def __iter__(self):
        return iter(self._records)

    def __bool__(self):
        return bool(self._records)

    def clear(self):
        self._records.clear()

    def __repr__(self):
        return "ExchangeLog(%d/%d record(s), %d dropped)" % (
            len(self._records), self.capacity, self.dropped,
        )


class Network:
    """Routes requests to registered servers with simulated latency.

    The network is also where the replay stack defends against an
    unreliable backend: an optional per-request ``timeout_ms`` turns
    slow requests into :class:`NetworkTimeoutError`, and ``retries`` >
    0 makes transient failures (injected faults, timeouts) retry after
    a capped-exponential, deterministically jittered backoff — all in
    virtual time, so runs stay reproducible.
    """

    def __init__(self, event_loop, default_latency_ms=50.0, timeout_ms=None,
                 retries=0, backoff=None, retry_jitter_seed=0,
                 log_capacity=DEFAULT_LOG_CAPACITY):
        self.event_loop = event_loop
        self.default_latency_ms = default_latency_ms
        #: Fail requests whose (simulated) latency exceeds this; None = never.
        self.timeout_ms = timeout_ms
        #: Extra attempts after a transient failure (0 = fail fast).
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffSchedule(
            base_ms=20.0, cap_ms=500.0)
        #: Root of the per-request backoff jitter streams: each request
        #: derives its own sequence from this seed and its fingerprint,
        #: so retry timing never depends on what other requests did.
        self.retry_jitter_seed = retry_jitter_seed
        #: Net-fidelity counters — for reports.
        self.retry_count = 0
        self.timeout_count = 0
        #: Requests that ultimately failed (retries exhausted, no route,
        #: or a tape miss) — sync raises and async error responses both.
        self.failed_fetch_count = 0
        #: Playback requests with no matching tape entry.
        self.tape_miss_count = 0
        self._servers = {}
        self._latencies = {}
        #: Where responses come from; swap via :meth:`use_transport`.
        self.transport = LiveTransport(self._servers.get)
        #: Bounded wire log every exchange lands in; baselines tap this.
        self.exchange_log = ExchangeLog(log_capacity)

    @property
    def clock(self):
        return self.event_loop.clock

    def register(self, host, server, latency_ms=None):
        """Serve ``host`` with ``server``; optional per-host latency."""
        self._servers[host.lower()] = server
        if latency_ms is not None:
            self._latencies[host.lower()] = latency_ms
        return server

    def latency_for(self, host):
        return self._latencies.get(host.lower(), self.default_latency_ms)

    def use_transport(self, transport):
        """Install ``transport`` behind the seam; returns the previous one.

        This is how tape modes go live: wrap the current transport in a
        :class:`~repro.net.transport.RecordTransport`, or swap in a
        :class:`~repro.net.transport.PlaybackTransport` and the app
        servers are never consulted again.
        """
        previous = self.transport
        self.transport = transport
        return previous

    def _backoff_for(self, request):
        """A backoff sequence owned by this request alone.

        Seeded from ``retry_jitter_seed`` mixed with the request
        fingerprint (same mixing as the chaos layer's per-stream
        seeds), so two requests never share a jitter stream: one
        request retrying cannot perturb another's retry timing, and a
        request's own schedule is stable regardless of global order.
        """
        from repro.net.transport import request_fingerprint

        mixed = (self.retry_jitter_seed * 1000003 + zlib.crc32(
            request_fingerprint(request).encode("utf-8"))) & 0x7FFFFFFF
        return self.backoff.sequence(mixed)

    def _dispatch(self, request):
        """One exchange through the transport seam, logged on the wire."""
        try:
            response = self.transport.perform(request)
        except TapeMissError:
            self.tape_miss_count += 1
            raise
        self.exchange_log.append(
            ExchangeRecord(request, response, self.clock.now())
        )
        return response

    def fetch(self, url, method="GET", body=""):
        """Synchronous fetch (navigation): latency advances the clock.

        Transient failures (injected faults, timeouts) are retried up to
        ``self.retries`` times, backing the virtual clock off between
        attempts; permanent :class:`NetworkError`\\ s fail immediately.
        """
        request = HttpRequest(url, method=method, body=body)
        backoff_seq = None  # built on first retry; most fetches never pay
        attempt = 1
        while True:
            try:
                return self._fetch_once(request)
            except (NetworkFaultError, NetworkTimeoutError):
                if attempt > self.retries:
                    self.failed_fetch_count += 1
                    raise
                self.retry_count += 1
                if backoff_seq is None:
                    backoff_seq = self._backoff_for(request)
                self.clock.advance(backoff_seq.delay_ms(attempt))
                attempt += 1
            except NetworkError:
                # Permanent: no route, tape miss — retrying cannot help.
                self.failed_fetch_count += 1
                raise

    def _fetch_once(self, request):
        """One synchronous attempt: chaos gate, timeout, dispatch."""
        latency = self.latency_for(request.host)
        injector = chaos.current()
        if injector is not None and not injector.net_active:
            injector = None
        if injector is not None:
            if injector.fault("net", "fail", "fetch_fail_rate",
                              detail=request.path) is not None:
                self.clock.advance(latency)
                raise NetworkFaultError(
                    "injected fetch failure for %s" % request.path)
            extra = injector.fault("net", "latency", "fetch_latency_rate",
                                   "fetch_latency_ms", detail=request.path)
            if extra is not None:
                latency += extra
        if self.timeout_ms is not None and latency > self.timeout_ms:
            self.timeout_count += 1
            self.clock.advance(self.timeout_ms)
            raise NetworkTimeoutError(
                "request for %s exceeded the %.0fms timeout"
                % (request.path, self.timeout_ms))
        self.clock.advance(latency)
        response = self._dispatch(request)
        if injector is not None:
            ms_per_kb = injector.fault("net", "slow_body",
                                       "fetch_slow_body_rate",
                                       "fetch_slow_body_ms_per_kb",
                                       detail=request.path)
            if ms_per_kb is not None:
                kb = max(1.0, len(response.body) / 1024.0)
                self.clock.advance(ms_per_kb * kb)
        return response

    def fetch_async(self, url, callback, method="GET", body=""):
        """Asynchronous fetch (XHR): callback fires after the latency.

        The callback always receives a response — transient failures
        retry on the event loop until attempts run out, then surface as
        a 502 (injected fault) or 504 (timeout), matching how the AJAX
        layer already reports wire errors.
        """
        request = HttpRequest(url, method=method, body=body)
        state = {"attempt": 1, "backoff": None}

        def deliver():
            injector = chaos.current()
            if injector is not None and not injector.net_active:
                injector = None
            if (injector is not None
                    and injector.fault("net", "fail", "fetch_fail_rate",
                                       detail=request.path) is not None):
                if state["attempt"] <= self.retries:
                    if state["backoff"] is None:
                        state["backoff"] = self._backoff_for(request)
                    delay = state["backoff"].delay_ms(state["attempt"])
                    state["attempt"] += 1
                    self.retry_count += 1
                    self.event_loop.call_later(delay, deliver)
                else:
                    self.failed_fetch_count += 1
                    callback(HttpResponse(body="injected network fault",
                                          status=502,
                                          content_type="text/plain"))
                return
            try:
                response = self._dispatch(request)
            except NetworkError:
                self.failed_fetch_count += 1
                response = HttpResponse(body="network error", status=502,
                                        content_type="text/plain")
            if injector is not None:
                ms_per_kb = injector.fault("net", "slow_body",
                                           "fetch_slow_body_rate",
                                           "fetch_slow_body_ms_per_kb",
                                           detail=request.path)
                if ms_per_kb is not None:
                    kb = max(1.0, len(response.body) / 1024.0)
                    self.event_loop.call_later(
                        ms_per_kb * kb, lambda: callback(response))
                    return
            callback(response)

        latency = self.latency_for(request.host)
        injector = chaos.current()
        if injector is not None and injector.net_active:
            extra = injector.fault("net", "latency", "fetch_latency_rate",
                                   "fetch_latency_ms", detail=request.path)
            if extra is not None:
                latency += extra
        if self.timeout_ms is not None and latency > self.timeout_ms:
            self.timeout_count += 1
            self.failed_fetch_count += 1

            def time_out():
                callback(HttpResponse(body="request timed out", status=504,
                                      content_type="text/plain"))

            return self.event_loop.call_later(self.timeout_ms, time_out)
        return self.event_loop.call_later(latency, deliver)
