"""XMLHttpRequest-style API for page scripts.

Page scripts in the simulated applications use this instead of calling
the network directly, mirroring how AJAX code is written: create, open,
assign ``onload``, send. The response arrives asynchronously on the
event loop.
"""

from repro.util.errors import NetworkError


class XmlHttpRequest:
    """Minimal XHR: open → send → onload(response)."""

    UNSENT = 0
    OPENED = 1
    DONE = 4

    def __init__(self, network):
        self._network = network
        self.ready_state = self.UNSENT
        self.status = 0
        self.response_text = ""
        self.onload = None
        self.onerror = None
        self._method = None
        self._url = None

    def open(self, method, url):
        """Stage a request; does not touch the network yet."""
        self._method = method
        self._url = url
        self.ready_state = self.OPENED

    def send(self, body=""):
        """Dispatch the request; completion callbacks fire via the loop."""
        if self.ready_state != self.OPENED:
            raise NetworkError("XHR.send() called before open()")

        def complete(response):
            self.ready_state = self.DONE
            self.status = response.status
            self.response_text = response.body
            if response.ok:
                if self.onload is not None:
                    self.onload(self)
            elif self.onerror is not None:
                self.onerror(self)

        self._network.fetch_async(self._url, complete, method=self._method,
                                  body=body)
