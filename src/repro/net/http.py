"""HTTP message types and URL handling."""

from repro.util.errors import NetworkError


def parse_url(url):
    """Split a URL into (scheme, host, path, query-dict).

    >>> parse_url("https://mail.example.com/compose?to=bob&cc=eve")
    ('https', 'mail.example.com', '/compose', {'to': 'bob', 'cc': 'eve'})
    """
    if "://" not in url:
        raise NetworkError("relative URL %r needs a base to resolve against" % url)
    scheme, rest = url.split("://", 1)
    scheme = scheme.lower()
    if scheme not in ("http", "https"):
        raise NetworkError("unsupported scheme %r" % scheme)
    if "/" in rest:
        host, path_and_query = rest.split("/", 1)
        path_and_query = "/" + path_and_query
    else:
        host, path_and_query = rest, "/"
    if "?" in path_and_query:
        path, query_string = path_and_query.split("?", 1)
    else:
        path, query_string = path_and_query, ""
    query = {}
    if query_string:
        for pair in query_string.split("&"):
            if not pair:
                continue
            if "=" in pair:
                key, value = pair.split("=", 1)
            else:
                key, value = pair, ""
            query[_unquote(key)] = _unquote(value)
    return scheme, host.lower(), path or "/", query


def build_url(scheme, host, path, query=None):
    """Inverse of :func:`parse_url`."""
    url = "%s://%s%s" % (scheme, host, path if path.startswith("/") else "/" + path)
    if query:
        pairs = "&".join("%s=%s" % (_quote(k), _quote(v)) for k, v in query.items())
        url += "?" + pairs
    return url


def resolve_url(base_url, target):
    """Resolve ``target`` (absolute, host-relative, or relative) against base."""
    if "://" in target:
        return target
    scheme, host, base_path, _ = parse_url(base_url)
    if target.startswith("/"):
        return "%s://%s%s" % (scheme, host, target)
    directory = base_path.rsplit("/", 1)[0]
    return "%s://%s%s/%s" % (scheme, host, directory, target)


def _quote(text):
    out = []
    for char in str(text):
        if char.isalnum() or char in "-_.~/":
            out.append(char)
        elif char == " ":
            out.append("+")
        else:
            out.append("%%%02X" % ord(char))
    return "".join(out)


def _unquote(text):
    out = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == "+":
            out.append(" ")
            i += 1
        elif char == "%" and i + 2 < len(text) + 1:
            try:
                out.append(chr(int(text[i + 1:i + 3], 16)))
                i += 3
            except ValueError:
                out.append(char)
                i += 1
        else:
            out.append(char)
            i += 1
    return "".join(out)


class HttpRequest:
    """A browser → server request."""

    def __init__(self, url, method="GET", body="", headers=None):
        self.url = url
        self.method = method.upper()
        self.body = body
        self.headers = dict(headers or {})
        self.scheme, self.host, self.path, self.query = parse_url(url)

    @property
    def is_secure(self):
        return self.scheme == "https"

    def __repr__(self):
        return "HttpRequest(%s %s)" % (self.method, self.url)


class HttpResponse:
    """A server → browser response."""

    def __init__(self, body="", status=200, content_type="text/html",
                 headers=None):
        self.body = body
        self.status = status
        self.content_type = content_type
        self.headers = dict(headers or {})

    @property
    def ok(self):
        return 200 <= self.status < 300

    @classmethod
    def html(cls, body, status=200):
        return cls(body=body, status=status, content_type="text/html")

    @classmethod
    def json(cls, body, status=200):
        return cls(body=body, status=status, content_type="application/json")

    @classmethod
    def not_found(cls, message="not found"):
        return cls(body=message, status=404, content_type="text/plain")

    def __repr__(self):
        return "HttpResponse(status=%d, type=%s, %d bytes)" % (
            self.status, self.content_type, len(self.body),
        )
