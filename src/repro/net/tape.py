"""Network tapes: content-addressed recordings of HTTP exchanges.

A :class:`Tape` is what :class:`~repro.net.transport.RecordTransport`
writes and :class:`~repro.net.transport.PlaybackTransport` serves: an
ordered list of exchanges keyed by request fingerprint, with every
response body stored once in a content-addressed :class:`BlobStore`.
Deduplication is the point — across a million recorded sessions of the
same application, the app shell, scripts, and common API responses are
byte-identical, so the marginal tape cost of one more session is its
handful of unique responses, not its full wire traffic.

A tape also carries provenance:

- the **chaos stamp** — the ``(profile, seed)`` active while recording,
  so a crash found under fault injection replays byte-identically from
  its tape (install the same profile and seed, play the tape back);
- the **config stamp** — a JSON-able dict of engine configuration
  (app, timing mode, session seed, ...) documenting what produced the
  recording.

On disk a tape is a compact ``WT1`` binary (same toolbox as the WR1
result wire format: LEB128 varints + a 1-based interned string table,
with blob bodies in a raw byte section so large payloads never bloat
the intern table), plus a JSON export for human inspection via
``python -m repro tape inspect --json``.
"""

import json

from repro.net.http import HttpResponse
from repro.net.transport import body_hash, request_fingerprint
from repro.session.wire import _read_varint, _StringTable, _write_varint

#: Tape format tag; bump when the layout changes incompatibly.
TAPE_MAGIC = b"WT1"


class TapeError(ValueError):
    """A blob that is not a well-formed WT1 tape."""


class BlobStore:
    """Content-addressed response bodies: one copy per distinct body.

    ``logical_bytes`` counts every byte handed to :meth:`put` (what a
    naive tape would store); ``stored_bytes`` counts what is actually
    kept. Their ratio is the dedup factor the bench reports.
    """

    def __init__(self):
        self._blobs = {}
        self.logical_bytes = 0

    def put(self, body):
        """Store ``body`` (str), returning its digest."""
        digest = body_hash(body)
        self.logical_bytes += len(body.encode("utf-8"))
        if digest not in self._blobs:
            self._blobs[digest] = body
        return digest

    def get(self, digest):
        try:
            return self._blobs[digest]
        except KeyError:
            raise TapeError("blob %s missing from store" % digest[:12])

    def __contains__(self, digest):
        return digest in self._blobs

    def __len__(self):
        return len(self._blobs)

    @property
    def stored_bytes(self):
        return sum(len(body.encode("utf-8"))
                   for body in self._blobs.values())

    @property
    def dedup_ratio(self):
        """logical/stored — 1.0 means no duplicate bodies were seen."""
        stored = self.stored_bytes
        return self.logical_bytes / stored if stored else 1.0

    def digests(self):
        return list(self._blobs)

    def discard(self, digest):
        self._blobs.pop(digest, None)

    def __repr__(self):
        return "BlobStore(%d blob(s), %d logical / %d stored bytes)" % (
            len(self._blobs), self.logical_bytes, self.stored_bytes,
        )


class TapeEntry:
    """One recorded exchange; the body lives in the tape's blob store."""

    __slots__ = ("ordinal", "fingerprint", "method", "url", "status",
                 "content_type", "headers", "body_digest")

    def __init__(self, ordinal, fingerprint, method, url, status,
                 content_type, headers, body_digest):
        self.ordinal = ordinal
        self.fingerprint = fingerprint
        self.method = method
        self.url = url
        self.status = status
        self.content_type = content_type
        self.headers = headers
        self.body_digest = body_digest

    def to_dict(self):
        return {
            "ordinal": self.ordinal,
            "fingerprint": self.fingerprint,
            "method": self.method,
            "url": self.url,
            "status": self.status,
            "content_type": self.content_type,
            "headers": dict(self.headers),
            "body_digest": self.body_digest,
        }

    def __repr__(self):
        return "TapeEntry(#%d %s %s -> %d)" % (
            self.ordinal, self.method, self.url, self.status,
        )


class Tape:
    """An ordered recording of HTTP exchanges, indexed by fingerprint."""

    def __init__(self, label=None, config=None):
        self.label = label
        #: Engine-config stamp (JSON-able dict) — what produced this tape.
        self.config = dict(config or {})
        #: Chaos stamp: profile name + seed active while recording.
        self.chaos_profile = None
        self.chaos_seed = None
        self.entries = []
        self.blobs = BlobStore()
        self._index = {}
        #: Built responses by ordinal. Playback serves the same entry
        #: thousands of times across a batch (every session replays the
        #: same app shell); responses are treated as immutable
        #: everywhere in the stack, so one built object per entry is
        #: safe and keeps playback at-or-above live throughput.
        self._responses = {}

    # -- recording -----------------------------------------------------------

    def record(self, request, response):
        """Append one exchange; returns the new :class:`TapeEntry`."""
        fingerprint = request_fingerprint(request)
        entry = TapeEntry(
            ordinal=len(self.entries),
            fingerprint=fingerprint,
            method=request.method,
            url=request.url,
            status=response.status,
            content_type=response.content_type,
            headers=dict(response.headers),
            body_digest=self.blobs.put(response.body),
        )
        self.entries.append(entry)
        self._index.setdefault(fingerprint, []).append(entry)
        return entry

    def stamp_chaos(self, profile_name, seed):
        self.chaos_profile = profile_name
        self.chaos_seed = seed

    # -- playback ------------------------------------------------------------

    def entries_for(self, fingerprint):
        """Entries matching ``fingerprint``, in recording order."""
        return self._index.get(fingerprint, [])

    def response_for(self, entry):
        """The recorded :class:`HttpResponse` for ``entry``.

        Built once per entry and shared between plays — responses are
        read-only throughout the stack.
        """
        response = self._responses.get(entry.ordinal)
        if response is None:
            response = HttpResponse(
                body=self.blobs.get(entry.body_digest),
                status=entry.status,
                content_type=entry.content_type,
                headers=dict(entry.headers),
            )
            self._responses[entry.ordinal] = response
        return response

    # -- accounting ----------------------------------------------------------

    def stats(self):
        return {
            "label": self.label,
            "entries": len(self.entries),
            "fingerprints": len(self._index),
            "unique_bodies": len(self.blobs),
            "logical_bytes": self.blobs.logical_bytes,
            "stored_bytes": self.blobs.stored_bytes,
            "dedup_ratio": round(self.blobs.dedup_ratio, 3),
            "chaos_profile": self.chaos_profile,
            "chaos_seed": self.chaos_seed,
        }

    def compact(self):
        """Drop blobs no entry references; returns how many were dropped.

        Orphans appear when entries are filtered or tapes are merged and
        re-saved; recording alone never creates one.
        """
        live = {entry.body_digest for entry in self.entries}
        orphans = [d for d in self.blobs.digests() if d not in live]
        for digest in orphans:
            self.blobs.discard(digest)
        return len(orphans)

    def __len__(self):
        return len(self.entries)

    def __repr__(self):
        return "Tape(%r, %d entr%s, %d blob(s))" % (
            self.label, len(self.entries),
            "y" if len(self.entries) == 1 else "ies", len(self.blobs),
        )

    # -- WT1 binary format ---------------------------------------------------

    def encode(self):
        """Pack the tape into one ``WT1`` blob."""
        table = _StringTable()
        body = bytearray()
        _write_varint(body, table.ref(self.label))
        _write_varint(body, table.ref(
            json.dumps(self.config, sort_keys=True) if self.config
            else None))
        _write_varint(body, table.ref(self.chaos_profile))
        if self.chaos_seed is None:
            body.append(0)
        else:
            body.append(1)
            _write_varint(body, self.chaos_seed)
        _write_varint(body, len(self.entries))
        for entry in self.entries:
            _write_varint(body, table.ref(entry.fingerprint))
            _write_varint(body, table.ref(entry.method))
            _write_varint(body, table.ref(entry.url))
            _write_varint(body, entry.status)
            _write_varint(body, table.ref(entry.content_type))
            _write_varint(body, table.ref(entry.body_digest))
            _write_varint(body, len(entry.headers))
            for name in sorted(entry.headers):
                _write_varint(body, table.ref(name))
                _write_varint(body, table.ref(str(entry.headers[name])))
        # Blob section: raw bytes, outside the intern table, so megabyte
        # bodies are a straight copy rather than table entries.
        digests = sorted(self.blobs.digests())
        _write_varint(body, len(digests))
        for digest in digests:
            _write_varint(body, table.ref(digest))
            payload = self.blobs.get(digest).encode("utf-8")
            _write_varint(body, len(payload))
            body.extend(payload)
        # Logical byte total cannot be recomputed from deduped blobs.
        _write_varint(body, self.blobs.logical_bytes)

        out = bytearray(TAPE_MAGIC)
        _write_varint(out, len(table.strings))
        for text in table.strings:
            encoded = text.encode("utf-8")
            _write_varint(out, len(encoded))
            out.extend(encoded)
        out.extend(body)
        return bytes(out)

    @classmethod
    def decode(cls, blob):
        """The exact inverse of :meth:`encode`."""
        if not isinstance(blob, (bytes, bytearray, memoryview)):
            raise TapeError("tape payload must be bytes, got %s"
                            % type(blob).__name__)
        blob = bytes(blob)
        if blob[:len(TAPE_MAGIC)] != TAPE_MAGIC:
            raise TapeError("bad magic; not a %s tape"
                            % TAPE_MAGIC.decode())
        reader = _TapeReader(blob)
        reader.pos = len(TAPE_MAGIC)
        for _ in range(reader.varint()):
            length = reader.varint()
            reader.strings.append(reader.take(length).decode("utf-8"))

        tape = cls(label=reader.string())
        config_json = reader.string()
        if config_json is not None:
            tape.config = json.loads(config_json)
        tape.chaos_profile = reader.string()
        if reader.byte():
            tape.chaos_seed = reader.varint()
        for ordinal in range(reader.varint()):
            entry = TapeEntry(
                ordinal=ordinal,
                fingerprint=reader.string(),
                method=reader.string(),
                url=reader.string(),
                status=reader.varint(),
                content_type=reader.string(),
                body_digest=reader.string(),
                headers={},
            )
            for _ in range(reader.varint()):
                name = reader.string()
                entry.headers[name] = reader.string()
            tape.entries.append(entry)
            tape._index.setdefault(entry.fingerprint, []).append(entry)
        for _ in range(reader.varint()):
            digest = reader.string()
            length = reader.varint()
            tape.blobs._blobs[digest] = reader.take(length).decode("utf-8")
        tape.blobs.logical_bytes = reader.varint()
        if reader.pos != len(blob):
            raise TapeError("%d trailing byte(s) after tape"
                            % (len(blob) - reader.pos))
        return tape

    def save(self, path):
        with open(path, "wb") as handle:
            handle.write(self.encode())
        return path

    @classmethod
    def load(cls, path):
        with open(path, "rb") as handle:
            return cls.decode(handle.read())

    # -- JSON export (inspection) --------------------------------------------

    def to_json_dict(self):
        """A JSON-able view of the whole tape (bodies inline)."""
        return {
            "format": TAPE_MAGIC.decode(),
            "label": self.label,
            "config": dict(self.config),
            "chaos": {"profile": self.chaos_profile,
                      "seed": self.chaos_seed},
            "stats": self.stats(),
            "entries": [entry.to_dict() for entry in self.entries],
            "blobs": {digest: self.blobs.get(digest)
                      for digest in sorted(self.blobs.digests())},
        }

    def export_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_json_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        return path


class _TapeReader:
    __slots__ = ("blob", "pos", "strings")

    def __init__(self, blob):
        self.blob = blob
        self.pos = 0
        self.strings = []

    def varint(self):
        value, self.pos = _read_varint(self.blob, self.pos)
        return value

    def byte(self):
        if self.pos >= len(self.blob):
            raise TapeError("truncated tape")
        value = self.blob[self.pos]
        self.pos += 1
        return value

    def take(self, count):
        if self.pos + count > len(self.blob):
            raise TapeError("truncated tape")
        chunk = self.blob[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def string(self):
        """A string reference: 0 is None, otherwise 1-based table index."""
        ref = self.varint()
        if ref == 0:
            return None
        try:
            return self.strings[ref - 1]
        except IndexError:
            raise TapeError("string reference %d outside table" % ref)
