"""The transport seam: where a request becomes a response.

Every request in the system — page navigation, iframe subresources,
AJAX — funnels through :class:`~repro.net.server.Network`, and the
network obtains each response from exactly one place: its installed
:class:`Transport`. The seam is deliberately narrow (one method,
``perform(request) -> response``) because everything *around* it —
latency, timeouts, retries, chaos injection — is policy the network
owns regardless of where bytes come from. Swapping the transport swaps
the world behind the wire:

- :class:`LiveTransport` dispatches to the registered application
  servers (today's behavior);
- :class:`RecordTransport` wraps a live transport and snapshots every
  exchange onto a :class:`~repro.net.tape.Tape`;
- :class:`PlaybackTransport` serves exclusively from a tape — no
  application servers, no app state, hermetic replay.

Requests are matched to tape entries by **fingerprint**: method +
canonical URL + body hash, with volatile headers excluded (the VCR
pattern). Identical requests repeated over a session play back their
recorded responses in order, so stateful backends (a counter endpoint,
a mailbox filling up) replay faithfully.

With a telemetry tracer installed, transport activity lands on the
``net`` track (``net.tape.record`` / ``net.tape.hit`` /
``net.tape.miss`` instants plus per-exchange spans), and playback
hit/miss totals ride the :mod:`repro.perf` counter pipeline into every
:class:`~repro.session.report.ReplayReport` as a ``net.tape`` counter.
"""

import hashlib

from repro import perf, telemetry
from repro.net.http import build_url, parse_url
from repro.telemetry.tracks import NET_TRACK
from repro.util.errors import NetworkError, TapeMissError

#: Tape modes, surfaced through EngineConfig/BatchRunner/CLI.
LIVE = "live"
RECORD = "record"
PLAYBACK = "playback"
TAPE_MODES = (LIVE, RECORD, PLAYBACK)

#: Headers excluded from fingerprints: they vary between otherwise
#: identical requests (clocks, request ids, credentials) and would make
#: every replayed request a tape miss.
VOLATILE_HEADERS = frozenset((
    "authorization",
    "cookie",
    "date",
    "if-modified-since",
    "if-none-match",
    "user-agent",
    "x-correlation-id",
    "x-request-id",
))


def canonical_url(url):
    """The URL with lowercased scheme/host and query keys sorted.

    Two spellings of the same request (``?a=1&b=2`` vs ``?b=2&a=1``)
    must fingerprint identically, or tape playback depends on the
    incidental iteration order of whoever built the query string.
    """
    scheme, host, path, query = parse_url(url)
    ordered = {key: query[key] for key in sorted(query)}
    return build_url(scheme, host, path, ordered)


def body_hash(body):
    """Content hash of a request/response body (sha-256 hex)."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    return hashlib.sha256(body).hexdigest()


def stable_headers_hash(headers):
    """Hash of the non-volatile headers, order-independent."""
    stable = sorted(
        (name.lower(), str(value))
        for name, value in (headers or {}).items()
        if name.lower() not in VOLATILE_HEADERS
    )
    digest = hashlib.sha256()
    for name, value in stable:
        digest.update(("%s:%s\n" % (name, value)).encode("utf-8"))
    return digest.hexdigest()


#: Memoized fingerprints. Sessions re-issue the same handful of
#: requests thousands of times across a batch; the sha-256 and URL
#: canonicalization are pure functions of the key below, so paying
#: them once per distinct request keeps playback at live speed.
_fingerprint_memo = {}
_FINGERPRINT_MEMO_CAP = 4096


def request_fingerprint(request):
    """The identity of a request on tape.

    ``method + canonical URL + body hash + stable-headers hash``,
    space-joined. A pure function of the request's replay-relevant
    content: volatile headers and query-key order do not perturb it.
    """
    headers = request.headers
    if headers:
        stable = tuple(sorted((name.lower(), str(value))
                              for name, value in headers.items()
                              if name.lower() not in VOLATILE_HEADERS))
    else:
        stable = ()  # the overwhelmingly common case: no headers at all
    key = (request.method, request.url, request.body, stable)
    fingerprint = _fingerprint_memo.get(key)
    if fingerprint is None:
        fingerprint = " ".join((
            request.method,
            canonical_url(request.url),
            body_hash(request.body),
            stable_headers_hash(request.headers),
        ))
        if len(_fingerprint_memo) >= _FINGERPRINT_MEMO_CAP:
            _fingerprint_memo.clear()
        _fingerprint_memo[key] = fingerprint
    return fingerprint


class Transport:
    """One side of the seam: turns a request into a response.

    Subclasses implement :meth:`_perform`; the public :meth:`perform`
    adds the shared accounting (exchange counter, telemetry span) so
    every transport reports through the same instruments.
    """

    #: One of ``LIVE`` / ``RECORD`` / ``PLAYBACK``.
    mode = LIVE

    def __init__(self):
        #: Exchanges this transport completed (responses returned).
        self.performed = 0

    def perform(self, request):
        """Produce the response for ``request`` (or raise NetworkError)."""
        tracer = telemetry.current()
        if tracer is None or not tracer.wants("net"):
            response = self._perform(request)
            self.performed += 1
            return response
        with tracer.span("net.transport.%s" % self.mode, track=NET_TRACK,
                         cat="net", args={"url": request.url,
                                          "method": request.method}) as args:
            response = self._perform(request)
            args["status"] = response.status
        self.performed += 1
        return response

    def _perform(self, request):
        raise NotImplementedError

    def describe(self):
        return self.mode

    def __repr__(self):
        return "%s(%d exchange(s))" % (type(self).__name__, self.performed)


class LiveTransport(Transport):
    """Dispatch to the application servers registered on a network.

    This is the only place in the stack that invokes a
    :meth:`~repro.net.server.WebServer.handle` — the acceptance
    property the seam tests pin: navigation, subresources, and AJAX all
    reach application code through here or not at all.
    """

    mode = LIVE

    def __init__(self, resolver):
        """``resolver(host) -> WebServer or None`` (the network's table)."""
        super().__init__()
        self._resolver = resolver

    def _perform(self, request):
        server = self._resolver(request.host)
        if server is None:
            raise NetworkError(
                "no server registered for host %r" % request.host)
        return server.handle(request)


class RecordTransport(Transport):
    """Live dispatch plus a snapshot of every exchange onto a tape."""

    mode = RECORD

    def __init__(self, inner, tape):
        super().__init__()
        self.inner = inner
        self.tape = tape

    def _perform(self, request):
        self._stamp_chaos()
        response = self.inner._perform(request)
        self.tape.record(request, response)
        tracer = telemetry.current()
        if tracer is not None and tracer.wants("net"):
            tracer.instant("net.tape.record", track=NET_TRACK, cat="net",
                           args={"fingerprint": request_fingerprint(request),
                                 "status": response.status})
        return response

    def _stamp_chaos(self):
        """Stamp the active ``(profile, seed)`` onto the tape once.

        Recorded lazily at exchange time because chaos is typically
        installed *around* the replay, after the transport is built; a
        tape carrying the stamp replays its crash byte-identically.
        """
        if self.tape.chaos_profile is not None:
            return
        from repro import chaos

        injector = chaos.current()
        if injector is not None:
            self.tape.stamp_chaos(injector.profile.name, injector.seed)


class PlaybackTransport(Transport):
    """Serve exclusively from a tape; the application zoo is not needed.

    Entries are matched by fingerprint; repeated identical requests
    play their recorded responses back in recording order (a stateful
    backend's evolving answers replay faithfully). When a fingerprint's
    recorded responses run out, the last one repeats — self-healing
    retries may lawfully re-issue a request more often than the
    recording did. A fingerprint with **no** entries at all is a tape
    miss and raises :class:`~repro.util.errors.TapeMissError`.
    """

    mode = PLAYBACK

    def __init__(self, tape):
        super().__init__()
        self.tape = tape
        self._cursors = {}
        #: Playback accounting (also mirrored as perf counter net.tape).
        self.hits = 0
        self.misses = 0

    def _perform(self, request):
        fingerprint = request_fingerprint(request)
        entries = self.tape.entries_for(fingerprint)
        tracer = telemetry.current()
        if tracer is not None and not tracer.wants("net"):
            tracer = None
        if not entries:
            self.misses += 1
            perf.record("net.tape", hit=False)
            if tracer is not None:
                tracer.instant("net.tape.miss", track=NET_TRACK, cat="net",
                               args={"fingerprint": fingerprint,
                                     "url": request.url})
            raise TapeMissError(
                "no tape entry for %s %s" % (request.method, request.url))
        position = self._cursors.get(fingerprint, 0)
        entry = entries[min(position, len(entries) - 1)]
        self._cursors[fingerprint] = position + 1
        self.hits += 1
        perf.record("net.tape", hit=True)
        if tracer is not None:
            tracer.instant("net.tape.hit", track=NET_TRACK, cat="net",
                           args={"fingerprint": fingerprint,
                                 "ordinal": entry.ordinal})
        return self.tape.response_for(entry)


class TapeConfig:
    """Picklable recipe for wiring a tape mode onto a session's network.

    This is the object the scale-out stack ships around: the batch
    runner applies it per trace, the sharded runner per shard, and the
    worker pool sends it to worker processes with each chunk (strings
    only, so it crosses the boundary for free). ``path`` is a tape file
    for single-session runs, or a directory (one ``<label>.tape`` per
    session) for batch runs. ``stamp`` is a JSON-able dict of engine
    config recorded onto every tape (timing mode, app, seed, ...) so a
    tape documents the configuration that produced it.
    """

    def __init__(self, mode, path=None, stamp=None):
        if mode not in TAPE_MODES:
            raise ValueError("tape mode must be one of %s, got %r"
                             % ("/".join(TAPE_MODES), mode))
        if mode in (RECORD, PLAYBACK) and path is None:
            raise ValueError("%s mode needs a tape path" % mode)
        self.mode = mode
        self.path = path
        self.stamp = dict(stamp or {})

    @classmethod
    def live(cls):
        return cls(LIVE)

    @classmethod
    def record(cls, path, stamp=None):
        return cls(RECORD, path, stamp=stamp)

    @classmethod
    def playback(cls, path, stamp=None):
        return cls(PLAYBACK, path, stamp=stamp)

    def tape_path(self, label=None):
        """The tape file behind ``label`` (directory paths get one per
        label; ``.tape`` paths are used as-is)."""
        import os

        if self.path is None:
            return None
        if self.path.endswith(".tape") or label is None:
            return self.path
        return os.path.join(self.path, "%s.tape" % _safe_stem(label))

    #: Decoded playback tapes, keyed by (path, mtime_ns, size). Tapes
    #: are immutable once written and playback never mutates one
    #: (cursors live on the transport), so every session replaying the
    #: same recording shares one decoded Tape instead of re-parsing the
    #: file per attach — the difference between playback running at
    #: and below live speed in the tape bench.
    _playback_cache = {}

    def _load_playback_tape(self, path):
        import os

        from repro.net.tape import Tape

        try:
            stat = os.stat(path)
            key = (os.path.abspath(path), stat.st_mtime_ns, stat.st_size)
        except OSError:
            return Tape.load(path)  # surface the usual open() error
        tape = self._playback_cache.get(key)
        if tape is None:
            if len(self._playback_cache) >= 64:
                self._playback_cache.clear()
            tape = self._playback_cache[key] = Tape.load(path)
        return tape

    def attach(self, network, label=None):
        """Install the configured transport on ``network``.

        Returns a :class:`TapeSession` whose :meth:`~TapeSession.finish`
        persists a recording (and restores the previous transport).
        LIVE mode attaches nothing and returns an inert session.
        """
        from repro.net.tape import Tape

        if self.mode == LIVE:
            return TapeSession(network, None, None, self)
        path = self.tape_path(label)
        if self.mode == RECORD:
            tape = Tape(label=label, config=self.stamp)
            transport = RecordTransport(network.transport, tape)
        else:
            transport = PlaybackTransport(self._load_playback_tape(path))
        previous = network.use_transport(transport)
        return TapeSession(network, transport, previous, self, path=path)


class TapeSession:
    """One attached tape: live for the session, persisted on finish."""

    def __init__(self, network, transport, previous, config, path=None):
        self.network = network
        self.transport = transport
        self.previous = previous
        self.config = config
        self.path = path
        self.finished = False

    @property
    def tape(self):
        return getattr(self.transport, "tape", None)

    def finish(self):
        """Save a recording (RECORD mode) and restore the old transport.

        Returns the tape (None in LIVE mode). Idempotent, so callers
        can finish in ``finally`` blocks without double-saving.
        """
        if self.finished:
            return self.tape
        self.finished = True
        if self.transport is None:
            return None
        self.network.use_transport(self.previous)
        if self.config.mode == RECORD and self.path is not None:
            import os

            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self.tape.save(self.path)
        return self.tape


def _safe_stem(label):
    """A filesystem-safe stem for a per-label tape file."""
    return "".join(c if c.isalnum() or c in "-._" else "_"
                   for c in str(label)) or "tape"
