"""Simulated network: HTTP messages, servers, and asynchronous XHR.

Stands in for the HTTP(S) traffic between browser and application server.
Latency is simulated on the discrete-event loop, which is what makes
AJAX-driven pages vulnerable to the *timing errors* WebErr injects
(paper, Section V-B). HTTPS is modeled as an opacity flag: the Fiddler
baseline can log encrypted exchanges but not read them, reproducing the
paper's argument for in-browser recording.
"""

from repro.net.http import HttpRequest, HttpResponse, parse_url, build_url
from repro.net.server import WebServer, RouteServer, Network
from repro.net.ajax import XmlHttpRequest

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_url",
    "build_url",
    "WebServer",
    "RouteServer",
    "Network",
    "XmlHttpRequest",
]
