"""Simulated network: HTTP messages, servers, transports, and XHR.

Stands in for the HTTP(S) traffic between browser and application server.
Latency is simulated on the discrete-event loop, which is what makes
AJAX-driven pages vulnerable to the *timing errors* WebErr injects
(paper, Section V-B). HTTPS is modeled as an opacity flag: the Fiddler
baseline can log encrypted exchanges but not read them, reproducing the
paper's argument for in-browser recording.

Every request reaches its server through the **transport seam**
(:mod:`repro.net.transport`): swap the network's transport and the same
session records to — or replays hermetically from — a content-addressed
:class:`~repro.net.tape.Tape` instead of touching live servers.
"""

from repro.net.http import HttpRequest, HttpResponse, parse_url, build_url
from repro.net.server import ExchangeLog, Network, RouteServer, WebServer
from repro.net.transport import (
    LIVE,
    PLAYBACK,
    RECORD,
    TAPE_MODES,
    LiveTransport,
    PlaybackTransport,
    RecordTransport,
    TapeConfig,
    Transport,
    canonical_url,
    request_fingerprint,
)
from repro.net.tape import BlobStore, Tape, TapeEntry
from repro.net.ajax import XmlHttpRequest

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "parse_url",
    "build_url",
    "WebServer",
    "RouteServer",
    "Network",
    "ExchangeLog",
    "XmlHttpRequest",
    "Transport",
    "LiveTransport",
    "RecordTransport",
    "PlaybackTransport",
    "TapeConfig",
    "Tape",
    "TapeEntry",
    "BlobStore",
    "canonical_url",
    "request_fingerprint",
    "LIVE",
    "RECORD",
    "PLAYBACK",
    "TAPE_MODES",
]
