"""Scripted user sessions and the ground-truth action log.

A :class:`SimulatedUser` drives a tab the way a human would — clicks,
double clicks, keystrokes, drags, think time — and logs every action it
performs. That log is the ground truth the recording-fidelity experiment
(Table II) scores recorders against: a recorder is Complete only if it
captured every logged action.

The module also provides the paper's four Table II scenarios plus the
search-engine session used for Table I.
"""

from repro.baselines.fidelity import (
    ACTION_CLICK,
    ACTION_DOUBLECLICK,
    ACTION_DRAG,
    ACTION_KEY,
)


class UserAction:
    """Ground truth for one user action.

    ``is_focus_click`` marks clicks whose only purpose is placing the
    caret in a text control — Selenese ``type`` commands subsume those,
    so the fidelity scorer credits them to a recorded ``type``.
    """

    def __init__(self, kind, target_tag="", into_value_control=False, key="",
                 is_focus_click=False):
        self.kind = kind
        self.target_tag = target_tag
        self.into_value_control = into_value_control
        self.key = key
        self.is_focus_click = is_focus_click

    def __repr__(self):
        return "UserAction(%s, tag=%s, key=%r)" % (
            self.kind, self.target_tag, self.key,
        )


class SimulatedUser:
    """Drives one tab and logs its own actions."""

    def __init__(self, tab, think_time_ms=120.0, rng=None):
        self.tab = tab
        self.think_time_ms = think_time_ms
        self.rng = rng
        self.actions = []

    # -- timing ------------------------------------------------------------

    def wait(self, duration_ms):
        """Explicitly wait (e.g. for the page to become ready)."""
        self.tab.wait(duration_ms)

    def think(self):
        """Natural pause between actions."""
        if self.rng is not None:
            self.tab.wait(self.rng.gauss_positive(self.think_time_ms,
                                                  self.think_time_ms / 4,
                                                  minimum=10.0))
        else:
            self.tab.wait(self.think_time_ms)

    # -- actions ------------------------------------------------------------

    def click(self, xpath):
        element = self.tab.find(xpath)
        is_focus_click = (
            element.tag == "textarea"
            or (element.tag == "input"
                and (element.get_attribute("type") or "text").lower()
                in ("text", "password", "email", "search"))
        )
        self.actions.append(
            UserAction(ACTION_CLICK, element.tag, is_focus_click=is_focus_click)
        )
        self.tab.click_element(element)
        self.think()
        return element

    def double_click(self, xpath):
        element = self.tab.find(xpath)
        self.actions.append(UserAction(ACTION_DOUBLECLICK, element.tag))
        self.tab.double_click_element(element)
        self.think()
        return element

    def drag(self, xpath, dx, dy):
        element = self.tab.find(xpath)
        self.actions.append(UserAction(ACTION_DRAG, element.tag))
        self.tab.drag_element(element, dx, dy)
        self.think()
        return element

    def type_text(self, text, per_key_ms=None):
        """Type into whatever currently has focus."""
        delay = per_key_ms if per_key_ms is not None else self.think_time_ms / 4
        for key in text:
            self._log_key(key)
            self.tab.type_key(key)
            self.tab.wait(delay)

    def press(self, key):
        """Press a named key (Enter, Backspace, Control, ...)."""
        self._log_key(key)
        self.tab.type_key(key)
        self.think()

    def _log_key(self, key):
        focused = self.tab.engine.focused_element
        tag = focused.tag if focused is not None else "body"
        into_value = focused is not None and focused.supports_value()
        self.actions.append(
            UserAction(ACTION_KEY, tag, into_value_control=into_value, key=key)
        )


# ---------------------------------------------------------------------------
# Table II scenarios (one per row) and the Table I search session.
# ---------------------------------------------------------------------------

SITES_URL = "http://sites.example.com"
GMAIL_URL = "http://mail.example.com"
PORTAL_URL = "http://portal.example.com"
DOCS_URL = "http://docs.example.com"


def sites_edit_session(browser, text="Hello world!", page="home",
                       wait_for_editor_ms=800.0, think_time_ms=120.0):
    """Edit a Google Sites page: the paper's Figure-4 interaction.

    ``wait_for_editor_ms`` models the patient user; WebErr's timing
    injection replays the same trace with no waits.
    """
    tab = browser.new_tab("%s/edit/%s" % (SITES_URL, page))
    user = SimulatedUser(tab, think_time_ms=think_time_ms)
    user.wait(wait_for_editor_ms)
    user.click('//div/span[@id="start"]')
    user.type_text(text)
    user.click('//td/div[text()="Save"]')
    tab.wait_until_idle()
    return user


def gmail_compose_session(browser, to="bob@example.com", subject="Hello",
                          body="Hi Bob, lunch tomorrow?",
                          think_time_ms=120.0):
    """Compose and send an email (contenteditable body)."""
    tab = browser.new_tab("%s/" % GMAIL_URL)
    user = SimulatedUser(tab, think_time_ms=think_time_ms)
    user.click('//a[text()="Compose"]')
    user.click('//input[@name="to"]')
    user.type_text(to)
    user.click('//input[@name="subject"]')
    user.type_text(subject)
    user.click('//div[contains(@class, "editable")]')
    user.type_text(body)
    user.click('//div[text()="Send"]')
    tab.wait_until_idle()
    return user


def portal_authenticate_session(browser, login="jane", password="s3cret",
                                think_time_ms=120.0):
    """Sign in to the portal (classic form interaction)."""
    tab = browser.new_tab("%s/" % PORTAL_URL)
    user = SimulatedUser(tab, think_time_ms=think_time_ms)
    user.click('//input[@name="login"]')
    user.type_text(login)
    user.click('//input[@name="passwd"]')
    user.type_text(password)
    user.click('//input[@type="submit"]')
    tab.wait_until_idle()
    return user


def docs_edit_session(browser, sheet="budget", think_time_ms=120.0):
    """Edit a spreadsheet: double clicks, typing, drags."""
    tab = browser.new_tab("%s/sheet/%s" % (DOCS_URL, sheet))
    user = SimulatedUser(tab, think_time_ms=think_time_ms)
    user.double_click('//div[@id="cell_2_0"]')
    user.type_text("Travel")
    user.double_click('//div[@id="cell_2_1"]')
    user.type_text("300")
    user.drag('//div[@id="cell_0_0"]', 40, 20)
    user.drag('//div[@id="chart"]', 30, 45)
    user.click('//div[text()="Save"]')
    tab.wait_until_idle()
    return user


def dashboard_session(browser, note="check the charts", think_time_ms=100.0):
    """Touch all three dashboard widgets: iframe click, notes, drag."""
    tab = browser.new_tab("http://dashboard.example.com/")
    user = SimulatedUser(tab, think_time_ms=think_time_ms)

    # Click Refresh inside the news iframe (a src iframe: child engine).
    iframe = tab.find('//iframe[@id="news"]')
    child = tab.engine.frame_for(iframe)
    button = child.document.get_element_by_id("refresh")
    outer = tab.engine.layout.box_for(iframe)
    inner = child.layout.click_point(button)
    user.actions.append(UserAction(ACTION_CLICK, "button"))
    tab.click(int(outer.rect.x + inner[0]), int(outer.rect.y + inner[1]))
    user.think()

    # Type a note into the src-less iframe's pad (parent-document DOM).
    user.click('//div[@id="pad"]')
    user.type_text(note)
    user.click('//div[text()="Save note"]')

    # Drag the chart widget.
    user.drag('//div[@id="chart"]', 18, 9)
    tab.wait_until_idle()
    return user


def search_session(browser, engine_url, query, think_time_ms=60.0,
                   submit_with_enter=False):
    """Issue one query against a search engine; returns (user, tab)."""
    tab = browser.new_tab("%s/" % engine_url.rstrip("/"))
    user = SimulatedUser(tab, think_time_ms=think_time_ms)
    user.click('//input[@name="q"]')
    user.type_text(query)
    if submit_with_enter:
        user.press("Enter")
    else:
        user.click('//input[@type="submit"]')
    tab.wait_until_idle()
    return user, tab
