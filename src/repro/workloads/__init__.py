"""Workloads: query corpora, typo models, and scripted user sessions.

Everything the benchmarks feed into the system — the 186 frequent search
queries of Table I, the human-typo injector, and the per-application
scenario drivers that double as recording-fidelity ground truth.
"""

from repro.workloads.queries import FREQUENT_QUERIES, query_vocabulary
from repro.workloads.typos import TypoInjector, Typo
from repro.workloads.sessions import (
    SimulatedUser,
    UserAction,
    sites_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    docs_edit_session,
    search_session,
)

__all__ = [
    "FREQUENT_QUERIES",
    "query_vocabulary",
    "TypoInjector",
    "Typo",
    "SimulatedUser",
    "UserAction",
    "sites_edit_session",
    "gmail_compose_session",
    "portal_authenticate_session",
    "docs_edit_session",
    "search_session",
]
