"""The 186 frequent search queries of Table I.

The paper chose "186 frequent queries, from New York Times's top search
keywords and Google Trends's list of top searches" (2010/2011 era). The
original list is not published, so this is a synthetic equivalent: 186
realistic high-frequency queries of the same era and flavor — news
topics, celebrities, products, navigational queries, and how-to
searches. What matters for the experiment is the *workload shape*:
multi-word, natural-language queries over a common vocabulary that a
spell checker can model.
"""

FREQUENT_QUERIES = [
    # navigational / portal
    "facebook login",
    "youtube videos",
    "gmail sign in",
    "yahoo mail",
    "google maps",
    "craigslist new york",
    "ebay auctions",
    "amazon books",
    "twitter search",
    "myspace music",
    "wikipedia english",
    "netflix movies",
    "hotmail inbox",
    "aol mail",
    "bing images",
    "pandora radio",
    "linkedin jobs",
    "paypal account",
    "bank of america online",
    "chase online banking",
    # news / events (2010-2011)
    "world cup 2010",
    "world cup schedule",
    "olympics vancouver",
    "haiti earthquake relief",
    "chile earthquake news",
    "gulf oil spill",
    "bp oil spill update",
    "iceland volcano ash",
    "royal wedding date",
    "elections results",
    "health care reform bill",
    "stock market today",
    "unemployment benefits extension",
    "swine flu symptoms",
    "h1n1 vaccine safety",
    "hurricane season forecast",
    "chilean miners rescue",
    "toyota recall list",
    "census jobs",
    "tax refund status",
    # celebrities / entertainment
    "justin bieber songs",
    "lady gaga video",
    "michael jackson tribute",
    "tiger woods apology",
    "lindsay lohan news",
    "miley cyrus concert",
    "taylor swift album",
    "kanye west twitter",
    "britney spears tour",
    "sandra bullock movies",
    "johnny depp films",
    "angelina jolie news",
    "brad pitt interview",
    "jennifer aniston hair",
    "kim kardashian photos",
    "oprah winfrey show",
    "ellen degeneres tickets",
    "american idol winner",
    "dancing with the stars cast",
    "glee episodes online",
    "lost finale explained",
    "avatar movie review",
    "twilight eclipse trailer",
    "iron man 2 release",
    "toy story 3 showtimes",
    "inception plot explained",
    "harry potter premiere",
    "shrek forever after",
    "alice in wonderland review",
    "grammy awards winners",
    # sports
    "super bowl score",
    "nba playoffs schedule",
    "nfl draft picks",
    "march madness bracket",
    "wimbledon results",
    "tour de france standings",
    "nascar race results",
    "kentucky derby winner",
    "lebron james decision",
    "kobe bryant stats",
    "new york yankees tickets",
    "boston red sox roster",
    "manchester united score",
    "barcelona vs real madrid",
    "fifa rankings",
    # products / tech
    "iphone 4 review",
    "ipad price comparison",
    "android phones 2010",
    "blackberry torch specs",
    "kindle vs nook",
    "windows 7 upgrade",
    "internet explorer 9 download",
    "firefox latest version",
    "google chrome download",
    "microsoft office 2010 trial",
    "antivirus software free",
    "laptop deals black friday",
    "digital camera reviews",
    "flat screen tv sale",
    "xbox 360 kinect",
    "playstation move games",
    "nintendo wii bundle",
    "gps navigation best",
    "bluetooth headset reviews",
    "wireless router setup",
    # weather / local
    "weather forecast",
    "weather new york",
    "weather chicago",
    "weather los angeles",
    "snow storm warning",
    "traffic report",
    "gas prices near me",
    "movie times tonight",
    "restaurants open late",
    "pizza delivery",
    # health
    "weight loss tips",
    "diet plans that work",
    "symptoms of diabetes",
    "high blood pressure diet",
    "cold remedies natural",
    "allergy medicine",
    "back pain exercises",
    "vitamin d deficiency",
    "calories in banana",
    "how many calories a day",
    # finance / shopping
    "mortgage rates today",
    "credit score free",
    "student loans consolidation",
    "cheap flights",
    "hotel deals vegas",
    "car insurance quotes",
    "used cars for sale",
    "apartments for rent",
    "jobs hiring now",
    "resume templates free",
    "coupons printable",
    "gold price per ounce",
    "currency converter",
    "savings account rates",
    "retirement calculator",
    # how-to / reference
    "how to tie a tie",
    "how to lose weight fast",
    "how to make pancakes",
    "how to write a resume",
    "how to download music",
    "how to take a screenshot",
    "how to boil an egg",
    "how to get rid of ants",
    "how to make money online",
    "how to learn spanish",
    "what time is it in london",
    "what is my ip address",
    "when is easter this year",
    "when does summer start",
    "why is the sky blue",
    "dictionary definition",
    "thesaurus synonyms",
    "spanish to english translation",
    "french translation online",
    "periodic table of elements",
    # recipes / lifestyle
    "chicken recipes easy",
    "chocolate chip cookie recipe",
    "banana bread recipe",
    "slow cooker recipes",
    "vegetarian dinner ideas",
    "wedding dresses 2010",
    "hairstyles for long hair",
    "tattoo designs small",
    "baby names popular",
    "dog training tips",
    # travel / places
    "new york city attractions",
    "las vegas shows",
    "disney world tickets",
    "grand canyon tours",
    "paris travel guide",
    "london underground map",
    "rome italy hotels",
    "hawaii vacation packages",
    "mexico beach resorts",
    "road trip planner",
    # misc utilities
    "zip code lookup",
    "phone number reverse lookup",
    "driving directions",
    "unit conversion",
    "calendar 2011",
    "time zone converter",
]

if len(FREQUENT_QUERIES) != 186:
    raise AssertionError(
        "query corpus must contain exactly 186 queries, has %d"
        % len(FREQUENT_QUERIES)
    )


def query_vocabulary():
    """All distinct words appearing in the corpus (the engines'
    dictionary seed)."""
    words = set()
    for query in FREQUENT_QUERIES:
        words.update(query.split())
    return sorted(words)


def word_frequencies():
    """Word -> number of corpus queries containing it (language model)."""
    frequencies = {}
    for query in FREQUENT_QUERIES:
        for word in query.split():
            frequencies[word] = frequencies.get(word, 0) + 1
    return frequencies
