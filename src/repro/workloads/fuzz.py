"""Random-but-plausible user sessions (fuzzing the record/replay stack).

A :class:`RandomSessionGenerator` drives a tab like an erratic but
realistic user: it looks at the rendered page, picks an interactive
element (a link, form control, contenteditable region, something with a
click handler), and clicks / types / drags with random think times. All
randomness is seeded, so a fuzzed session is reproducible — which makes
it a strong end-to-end property: *any* recordable session, however
chaotic, must replay completely.
"""

from repro.util.rng import SeededRandom

#: Words the fuzzer types (kept lowercase: no Shift combining surprises).
_WORDS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
          "golf", "hotel", "india", "juliet"]


class RandomSessionGenerator:
    """Performs random valid actions against a live tab."""

    def __init__(self, tab, rng=None, think_time_ms=50.0):
        self.tab = tab
        self.rng = rng if rng is not None else SeededRandom(0)
        self.think_time_ms = think_time_ms
        self.actions_performed = []

    # -- element discovery --------------------------------------------------

    def _interactive_elements(self):
        """Visible elements a user could plausibly interact with."""
        engine = self.tab.engine
        candidates = []
        for element in engine.document.all_elements():
            if engine.layout.box_for(element) is None:
                continue
            if self._interaction_kinds(element):
                candidates.append(element)
        return candidates

    @staticmethod
    def _interaction_kinds(element):
        kinds = []
        tag = element.tag
        if tag == "a" and element.has_attribute("href"):
            kinds.append("click")
        elif tag == "input":
            input_type = (element.get_attribute("type") or "text").lower()
            if input_type in ("submit", "button", "checkbox", "radio"):
                kinds.append("click")
            else:
                kinds.extend(["click", "type"])
        elif tag in ("button", "select", "textarea"):
            kinds.append("click")
            if tag == "textarea":
                kinds.append("type")
        elif element.is_content_editable:
            kinds.extend(["click", "type"])
        elif element.has_listener("click"):
            kinds.append("click")
        if element.has_listener("dblclick"):
            kinds.append("doubleclick")
        if element.has_listener("drag") or "widget" in element.classes:
            kinds.append("drag")
        return kinds

    # -- acting ------------------------------------------------------------

    def perform_one_action(self):
        """One random action; returns its description, or None if the
        page offers nothing to interact with."""
        candidates = self._interactive_elements()
        if not candidates:
            return None
        element = self.rng.choice(candidates)
        kind = self.rng.choice(self._interaction_kinds(element))
        description = (kind, element.tag)

        if kind == "click":
            self.tab.click_element(element)
        elif kind == "doubleclick":
            self.tab.double_click_element(element)
        elif kind == "drag":
            self.tab.drag_element(element,
                                  self.rng.randint(-30, 30),
                                  self.rng.randint(-20, 20))
        elif kind == "type":
            focused = self.tab.engine.focused_element
            if focused is None or (focused is not element
                                   and not element.is_content_editable):
                self.tab.click_element(element)
            word = self.rng.choice(_WORDS)
            # Whole milliseconds only: recorded elapsed times are integer
            # ms, and fractional waits would make replay drift.
            self.tab.type_text(word,
                               think_time_ms=int(self.think_time_ms // 4))
        self.tab.wait(int(self.rng.gauss_positive(self.think_time_ms,
                                                  self.think_time_ms / 3,
                                                  minimum=5.0)))
        self.actions_performed.append(description)
        return description

    def run(self, action_count):
        """Perform up to ``action_count`` actions; returns those done."""
        for _ in range(action_count):
            if self.perform_one_action() is None:
                break
        self.tab.wait_until_idle()
        return self.actions_performed


def fuzz_session(browser, start_url, action_count, seed=0,
                 think_time_ms=50.0):
    """Open a tab, run a fuzzed session, return the generator."""
    tab = browser.new_tab(start_url)
    generator = RandomSessionGenerator(tab, rng=SeededRandom(seed),
                                       think_time_ms=think_time_ms)
    generator.run(action_count)
    return generator
