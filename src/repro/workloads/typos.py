"""Human-typo model.

WebErr substitutes correct keystrokes with erroneous ones to simulate
"one of the most common user errors, typos in search queries" (paper,
Section V-C). The injector produces the classic single-edit typo
classes observed in human typing studies:

- **substitution** of an adjacent key on a QWERTY keyboard,
- **transposition** of two neighbouring characters,
- **deletion** of a character,
- **duplication** of a character,
- **insertion** of an adjacent key.

All randomness comes from a :class:`~repro.util.rng.SeededRandom`, so a
given seed always yields the same 186 typo'd queries.
"""

#: QWERTY adjacency (letters only; a fair model of fat-finger slips).
QWERTY_NEIGHBORS = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg",
    "y": "tuh", "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
}

KINDS = ("substitution", "transposition", "deletion", "duplication",
         "insertion")


class Typo:
    """One injected typo: where it went in and what came out."""

    def __init__(self, original, corrupted, kind, word_index, char_index):
        self.original = original
        self.corrupted = corrupted
        self.kind = kind
        self.word_index = word_index
        self.char_index = char_index

    def __repr__(self):
        return "Typo(%r -> %r, %s)" % (self.original, self.corrupted, self.kind)


class TypoInjector:
    """Injects one realistic typo into a query string."""

    def __init__(self, rng):
        self.rng = rng

    def inject(self, query):
        """Return a :class:`Typo` for ``query``.

        The typo lands in a random alphabetic word of length >= 3 (short
        words and numbers are rarely mistyped in a detectable way).
        Guaranteed to change the string.
        """
        words = query.split()
        candidates = [
            (index, word) for index, word in enumerate(words)
            if len(word) >= 3 and word.isalpha()
        ]
        if not candidates:
            candidates = [(index, word) for index, word in enumerate(words)]
        word_index, word = self.rng.choice(candidates)

        for _ in range(20):
            kind = self.rng.choice(KINDS)
            corrupted_word, char_index = self._corrupt(word, kind)
            if corrupted_word != word:
                corrupted_words = list(words)
                corrupted_words[word_index] = corrupted_word
                return Typo(query, " ".join(corrupted_words), kind,
                            word_index, char_index)
        # Degenerate word (e.g. "aa" with unlucky draws): force deletion.
        corrupted_words = list(words)
        corrupted_words[word_index] = word[1:] or "x"
        return Typo(query, " ".join(corrupted_words), "deletion", word_index, 0)

    def _corrupt(self, word, kind):
        rng = self.rng
        position = rng.randint(0, len(word) - 1)
        char = word[position].lower()
        if kind == "substitution":
            neighbors = QWERTY_NEIGHBORS.get(char)
            if not neighbors:
                return word, position
            replacement = rng.choice(neighbors)
            return word[:position] + replacement + word[position + 1:], position
        if kind == "transposition":
            if len(word) < 2:
                return word, position
            position = min(position, len(word) - 2)
            return (word[:position] + word[position + 1] + word[position]
                    + word[position + 2:], position)
        if kind == "deletion":
            if len(word) < 2:
                return word, position
            return word[:position] + word[position + 1:], position
        if kind == "duplication":
            return word[:position] + char + word[position:], position
        if kind == "insertion":
            neighbors = QWERTY_NEIGHBORS.get(char)
            if not neighbors:
                return word, position
            extra = rng.choice(neighbors)
            return word[:position] + extra + word[position:], position
        raise ValueError("unknown typo kind %r" % kind)

    def inject_all(self, queries):
        """One typo per query; returns a list of :class:`Typo`."""
        return [self.inject(query) for query in queries]
