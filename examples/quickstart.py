#!/usr/bin/env python3
"""Quickstart: record a web session with WaRR, then replay it.

Runs the paper's flagship interaction (Figure 4): a user edits a Google
Sites-style page — clicks "start", types "Hello world!", clicks Save —
while the WaRR Recorder embedded in the browser logs every action. The
trace is then replayed against a *fresh* instance of the application in
a developer-mode browser, and we verify the edit was reproduced.

Run with:  python examples/quickstart.py
"""

from repro import WarrRecorder, WarrReplayer, make_browser
from repro.apps.sites import SitesApplication
from repro.workloads.sessions import sites_edit_session


def main():
    # ------------------------------------------------------------------
    # 1. Record: the recorder sits at the WebKit layer of the browser,
    #    so it sees every click and keystroke with no app changes.
    # ------------------------------------------------------------------
    browser, (sites,) = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")

    sites_edit_session(browser, text="Hello world!")
    recorder.detach()

    trace = recorder.trace
    print("Recorded %d WaRR Commands:" % len(trace))
    print(trace.to_text())
    print("Server-side page after the session: %r" % sites.pages["home"])
    print("Mean recording overhead: %.1f microseconds per action"
          % recorder.mean_overhead_us())

    # ------------------------------------------------------------------
    # 2. Replay: a fresh application instance, a developer-mode browser
    #    (so synthesized keyboard events carry real key properties).
    # ------------------------------------------------------------------
    replay_browser, (fresh_sites,) = make_browser(
        [SitesApplication], developer_mode=True)
    replayer = WarrReplayer(replay_browser)
    report = replayer.replay(trace)

    print("\nReplay: %s" % report.summary())
    print("Replayed page content: %r" % fresh_sites.pages["home"])
    print("Final URL: %s" % report.final_url)

    assert report.complete, "replay must reproduce every command"
    assert fresh_sites.pages["home"] == sites.pages["home"], \
        "replay must reproduce the same server-side effect"
    print("\nOK: the replayed session reproduced the recorded one exactly.")


if __name__ == "__main__":
    main()
