#!/usr/bin/env python3
"""Recording nondeterminism and popups — the paper's extension points.

Section I claims the in-browser recorder "can easily be extended to
record various sources of nondeterminism (e.g., timers)", and Section
IV-D proposes fixing the popup blind spot by "insert[ing] logging
functionality in the browser code that handles pop-ups". This example
exercises both extensions:

1. a page whose behaviour depends on ``Math.random()`` is recorded with
   the NondeterminismRecorder; replaying with the log installed makes
   the random-dependent behaviour reproduce exactly;
2. a session involving a native confirmation dialog is recorded with
   the PopupRecorder; during replay the dialog is answered with the
   recorded choice automatically.

Run with:  python examples/deterministic_replay.py
"""

from repro import WarrRecorder, WarrReplayer, make_browser
from repro.apps.framework import WebApplication
from repro.core import (
    NondeterminismRecorder,
    NondeterminismReplayer,
    PopupRecorder,
    replay_popup_log,
)


class DiceApplication(WebApplication):
    """A page that rolls dice client-side — pure nondeterminism."""

    host = "dice.example.com"

    def configure(self):
        self.server.add_route("/", lambda request: (
            '<html><head><title>Dice</title></head><body>'
            '<div id="roll" contenteditable>Roll!</div>'
            '<div id="result"></div>'
            '<script data-script="dice.main"></script>'
            '</body></html>'))
        self.scripts.register("dice.main", self._page_script)

    @staticmethod
    def _page_script(window):
        window.env.rolls = []
        roll = window.get_element_by_id("roll")
        result = window.get_element_by_id("result")

        def on_click(event):
            value = int(window.random() * 6) + 1
            window.env.rolls.append(value)
            result.text_content = "You rolled %d" % value

        roll.add_event_listener("click", on_click)


def main():
    # ------------------------------------------------------------------
    # 1. Nondeterminism: record the dice page.
    # ------------------------------------------------------------------
    browser, _ = make_browser([DiceApplication], seed=7)
    warr = WarrRecorder().attach(browser)
    warr.begin("http://dice.example.com/")
    nd_recorder = NondeterminismRecorder().attach(browser)

    tab = browser.new_tab("http://dice.example.com/")
    for _ in range(3):
        tab.click_element(tab.find('//div[@id="roll"]'))
        tab.wait(100)
    original_rolls = list(tab.engine.window.env.rolls)
    print("Recorded rolls: %r" % original_rolls)
    print("Nondeterminism log: %d entries" % len(nd_recorder.log))

    # Replay WITHOUT the log on a differently seeded browser: diverges.
    wild_browser, _ = make_browser([DiceApplication], seed=99,
                                   developer_mode=True)
    wild_browser._script_rng.__init__(31337)
    WarrReplayer(wild_browser).replay(warr.trace)
    wild_rolls = wild_browser.tabs[0].engine.window.env.rolls
    print("Replay without the log: %r  (diverged: %s)"
          % (wild_rolls, wild_rolls != original_rolls))

    # Replay WITH the log: identical behaviour.
    exact_browser, _ = make_browser([DiceApplication], seed=99,
                                    developer_mode=True)
    exact_browser._script_rng.__init__(31337)
    NondeterminismReplayer(nd_recorder.log).install(exact_browser)
    WarrReplayer(exact_browser).replay(warr.trace)
    exact_rolls = exact_browser.tabs[0].engine.window.env.rolls
    print("Replay with the log:    %r  (identical: %s)"
          % (exact_rolls, exact_rolls == original_rolls))
    assert exact_rolls == original_rolls

    # ------------------------------------------------------------------
    # 2. Popups: record a native dialog answer, auto-answer on replay.
    # ------------------------------------------------------------------
    print("\nPopup logging:")
    popup_browser, _ = make_browser([DiceApplication])
    popup_recorder = PopupRecorder().attach(popup_browser)
    dialog = popup_browser.show_popup("Reset the dice?", ["Reset", "Keep"])
    dialog.click_button("Keep")
    print("Recorded dialog answer: %r" % popup_recorder.log.events[0].clicked)

    replay_browser, _ = make_browser([DiceApplication], developer_mode=True)
    state = replay_popup_log(replay_browser, popup_recorder.log)
    replayed_dialog = replay_browser.show_popup("Reset the dice?",
                                                ["Reset", "Keep"])
    print("Replayed dialog auto-answered: %r (consumed %d recorded answers)"
          % (replayed_dialog.clicked[0][0], state["consumed"]))
    assert replayed_dialog.clicked[0][0] == "Keep"

    print("\nOK: replay is deterministic even for random-dependent pages "
          "and native dialogs.")


if __name__ == "__main__":
    main()
