#!/usr/bin/env python3
"""WebErr: test a web application against realistic human errors.

Reproduces the paper's Section V workflow (Figure 5):

  1. record a correct interaction with the Sites editor,
  2. infer the user-interaction grammar from the trace,
  3. inject navigation errors (forget / reorder / substitute steps)
     and timing errors (impatient users),
  4. replay every erroneous trace against a fresh application instance
     under an oracle watching for page-script errors.

The timing campaign rediscovers the paper's Google Sites bug: editing
before the asynchronously-loaded editor module is ready dereferences an
uninitialized JavaScript variable.

Run with:  python examples/human_error_testing.py
"""

from repro import WarrRecorder, make_browser
from repro.apps.sites import SitesApplication
from repro.weberr import WebErr
from repro.workloads.sessions import sites_edit_session


def browser_factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def main():
    # Step 1 — record the correct interaction.
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Hello!")
    trace = recorder.trace
    print("Recorded a correct session of %d commands.\n" % len(trace))

    weberr = WebErr(browser_factory, max_tests=40)

    # Step 2 — infer the task tree and grammar.
    tree, grammar = weberr.infer(trace, label="EditSite")
    print("Inferred task tree:")
    print(tree.pretty())
    print("\nInduced grammar:")
    print(grammar.pretty())

    # Step 3+4 — navigation-error campaign.
    print("\n--- navigation-error campaign ---")
    navigation_report = weberr.run_navigation_campaign(trace,
                                                       label="EditSite")
    print(navigation_report.summary())
    for outcome in navigation_report.outcomes:
        marker = "BUG " if outcome.found_bug else "pass"
        print("  [%s] %s" % (marker, outcome.description))
        if outcome.found_bug:
            print("         %s" % outcome.verdict.reason)

    # Step 3+4 — timing-error campaign (the Section V-C experiment).
    print("\n--- timing-error campaign ---")
    timing_report = weberr.run_timing_campaign(trace)
    print(timing_report.summary())
    for outcome in timing_report.outcomes:
        marker = "BUG " if outcome.found_bug else "pass"
        print("  [%s] %-12s %s" % (marker, outcome.description,
                                   outcome.verdict.reason))

    assert timing_report.bugs, "the timing campaign finds the Sites bug"
    print("\nOK: WebErr found the uninitialized-variable timing bug, "
          "as in the paper.")


if __name__ == "__main__":
    main()
