#!/usr/bin/env python3
"""XPath relaxation in action: replaying GMail under id churn.

The paper's hardest replay challenge (Section IV-C): "whenever GMail
loaded, it generated new id properties for HTML elements", so recorded
XPath locators go stale. This example records an email being composed,
then replays the trace against an instance whose ids have all changed,
printing which relaxation heuristic rescued each locator.

Run with:  python examples/gmail_id_churn_replay.py
"""

from repro import WarrRecorder, make_browser
from repro.apps.gmail import GmailApplication
from repro.core.replayer import WarrReplayer
from repro.workloads.sessions import gmail_compose_session


def main():
    # Record the compose session.
    browser, (gmail,) = make_browser([GmailApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://mail.example.com/")
    gmail_compose_session(browser, to="eve@example.org", subject="Friday",
                          body="See you at the meeting.")
    trace = recorder.trace
    print("Recorded %d commands; sample locators:" % len(trace))
    for command in trace[:6]:
        print("  " + command.to_line())

    # Replay against a churned instance: render the compose view twice
    # first so every generated id differs from the recorded ones.
    replay_browser, (fresh_gmail,) = make_browser([GmailApplication],
                                                  developer_mode=True)
    replay_browser.new_tab("http://mail.example.com/compose")
    replay_browser.new_tab("http://mail.example.com/compose")

    replayer = WarrReplayer(replay_browser)
    report = replayer.replay(trace)
    print("\nReplay: %s" % report.summary())

    print("\nRelaxations used per command:")
    for result in report.results:
        if result.status == "relaxed":
            print("  %-55s <- %s"
                  % (result.command.to_line()[:55], result.detail))

    print("\nDelivered email: %r" % fresh_gmail.sent)
    assert report.complete
    assert fresh_gmail.sent == gmail.sent
    print("\nOK: every stale locator was relaxed to the right element; "
          "the same email was sent.")

    # Contrast: relaxation disabled.
    strict_browser, (strict_gmail,) = make_browser([GmailApplication],
                                                   developer_mode=True)
    strict_browser.new_tab("http://mail.example.com/compose")
    strict = WarrReplayer(strict_browser, relaxation=False).replay(trace)
    print("Without relaxation the same replay manages only %d/%d commands "
          "and sends %d emails." % (strict.replayed_count, len(trace),
                                    len(strict_gmail.sent)))


if __name__ == "__main__":
    main()
