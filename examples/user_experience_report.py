#!/usr/bin/env python3
"""AUsER: automatic user experience reports (paper, Section VI).

A user signs in to a portal, notices something wrong, and presses the
AUsER button. The tool bundles:

  - the always-on WaRR Recorder's command trace (password keystrokes
    scrubbed),
  - the user's textual description,
  - a snapshot of just the part of the page the user chose to share,

then encrypts the bundle with the developers' public key. On the
developer side we decrypt it and replay the scrubbed trace — it drives
the application down the same path with dummy credentials.

Run with:  python examples/user_experience_report.py
"""

from repro import WarrRecorder, WarrReplayer, make_browser
from repro.apps.portal import PortalApplication
from repro.auser import AUsER, ToyRSA
from repro.core.trace import WarrTrace
from repro.workloads.sessions import portal_authenticate_session


def main():
    # --- the user's machine -------------------------------------------
    browser, _ = make_browser([PortalApplication])
    recorder = WarrRecorder().attach(browser)   # always-on
    recorder.begin("http://portal.example.com/")

    portal_authenticate_session(browser)        # ... normal usage ...

    # Something looks wrong; the user presses the AUsER button and
    # shares only the greeting element, not the whole page.
    auser = AUsER(recorder, browser)
    report = auser.report_problem(
        description="The greeting shows my login, not my display name.",
        region_xpath='//div[@id="greeting"]',
    )
    print("Report assembled (%d commands, scrubbed=%s):"
          % (len(report.trace), report.scrubbed))
    print(report.to_text())
    print("Recorder overhead acceptable (below 100 ms perception "
          "threshold): %s" % auser.recorder_overhead_acceptable())

    # Encrypt for the developers.
    developer_keys = ToyRSA.generate(seed=2011)
    ciphertext = report.encrypt(developer_keys.public)
    print("Encrypted report: %d blocks" % len(ciphertext))

    # --- the developers' machine ---------------------------------------
    plaintext = ToyRSA.decrypt(ciphertext, developer_keys.private)
    assert plaintext == report.to_text()
    received_trace = WarrTrace.from_text(
        plaintext[plaintext.index("#! warr-trace v1"):
                  plaintext.index("--- snapshot")])
    print("\nDevelopers decrypted the report and recovered %d commands."
          % len(received_trace))

    replay_browser, (portal,) = make_browser([PortalApplication],
                                             developer_mode=True)
    result = WarrReplayer(replay_browser).replay(received_trace)
    print("Replay of the scrubbed trace: %s" % result.summary())
    print("Login attempts observed server-side: %r" % portal.login_attempts)
    print("(The password was scrubbed, so authentication fails — but the "
          "interaction path is reproduced.)")

    assert result.complete
    assert portal.login_attempts == ["jane"]
    print("\nOK: the developers reproduced the user's session from the "
          "report.")


if __name__ == "__main__":
    main()
