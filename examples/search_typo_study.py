#!/usr/bin/env python3
"""The Table I study: how well search engines fix query typos.

Reproduces Section V-C's first WebErr case study: take 186 frequent
search queries, inject one realistic typo into each, submit them to
Google/Bing/Yahoo-style engines, and measure how many typos each engine
detects and fixes (by reading the "Showing results for ..." banner).

A handful of searches are driven through the full browser stack
(recorded session, typo substituted into the type commands, replayed);
the bulk of the corpus goes through the engines' spell checkers
directly, which the cross-check shows is equivalent.

Run with:  python examples/search_typo_study.py
"""

from repro import WarrRecorder, WarrReplayer, make_browser
from repro.apps.search import (
    BingSearchApplication,
    GoogleSearchApplication,
    YahooSearchApplication,
)
from repro.core.commands import TypeCommand
from repro.events.keys import virtual_key_code
from repro.util.rng import SeededRandom
from repro.workloads.queries import FREQUENT_QUERIES
from repro.workloads.sessions import search_session
from repro.workloads.typos import TypoInjector

ENGINES = [GoogleSearchApplication, YahooSearchApplication,
           BingSearchApplication]
PAPER_RATES = {"Google": 100.0, "Yahoo!": 84.4, "Bing": 59.1}


def typo_trace_for(engine_class, correct_query, typo_query):
    """Record a correct search, then substitute the typed keystrokes."""
    browser, _ = make_browser([engine_class])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://%s/" % engine_class.host)
    search_session(browser, "http://%s" % engine_class.host, correct_query)
    trace = recorder.trace

    first_key = next(i for i, c in enumerate(trace.commands)
                     if isinstance(c, TypeCommand))
    keystrokes = [TypeCommand(trace.commands[first_key].xpath, key=char,
                              code=virtual_key_code(char), elapsed_ms=15)
                  for char in typo_query]
    mutated = trace.copy(commands=[
        c for c in trace.commands if not isinstance(c, TypeCommand)])
    mutated.commands[first_key:first_key] = keystrokes
    return mutated


def main():
    typos = TypoInjector(SeededRandom(42)).inject_all(FREQUENT_QUERIES)
    print("Injected one typo into each of %d queries "
          "(e.g. %r -> %r [%s]).\n"
          % (len(typos), typos[0].original, typos[0].corrupted,
             typos[0].kind))

    # Full-browser demonstration on one query per engine.
    print("Full record-inject-replay pipeline (one query per engine):")
    for engine_class in ENGINES:
        typo = typos[20]
        trace = typo_trace_for(engine_class, typo.original, typo.corrupted)
        browser, (application,) = make_browser([engine_class],
                                               developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        banner = application.correction_shown(browser.tabs[0].document)
        print("  %-8s submitted %r -> banner: %r (replay: %s)"
              % (engine_class.engine_name, typo.corrupted, banner,
                 "ok" if report.complete else "FAILED"))

    # Corpus-scale measurement through the spell checkers.
    print("\nTable I over the full corpus:")
    print("  %-10s %-10s %-10s" % ("engine", "measured", "paper"))
    for engine_class in ENGINES:
        application = engine_class(rng=SeededRandom(0))
        fixed = sum(1 for t in typos
                    if application.checker.correct(t.corrupted) == t.original)
        rate = 100.0 * fixed / len(typos)
        print("  %-10s %-10s %-10s"
              % (engine_class.engine_name, "%.1f%%" % rate,
                 "%.1f%%" % PAPER_RATES[engine_class.engine_name]))

    print("\nOK: ordering (Google > Yahoo! > Bing) and magnitudes match "
          "the paper.")


if __name__ == "__main__":
    main()
